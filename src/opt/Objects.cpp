//===- opt/Objects.cpp - Escape analysis and monitor elision --------------===//
//
// Escape analysis marks allocations that never leave the method so the
// code generator can stack-allocate them; monitor elision removes
// synchronization on such thread-local objects. The paper calls out
// "allocates dynamic memory triggers specific passes, such as escape
// analysis" as one of the feature/transformation couplings the learning
// can discover.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include <unordered_map>
#include <unordered_set>

using namespace jitml;

namespace {

/// Result of the escape computation: allocation nodes that provably never
/// escape the frame, and the local slots that exclusively alias them.
struct EscapeFacts {
  std::unordered_set<NodeId> NonEscaping;
  std::unordered_map<int32_t, NodeId> ExclusiveSlots; ///< slot -> alloc node
};

EscapeFacts computeEscapes(PassContext &Ctx) {
  const MethodIL &IL = Ctx.cil();
  EscapeFacts Facts;

  // Candidate allocations: every reachable `new` node.
  std::vector<NodeId> Allocs;
  for (NodeId Id = 0; Id < IL.numNodes(); ++Id)
    if (IL.node(Id).Op == ILOp::New)
      Allocs.push_back(Id);
  if (Allocs.empty())
    return Facts;

  // Slots that only ever hold one specific allocation (every store to the
  // slot stores that allocation and nothing else).
  std::unordered_map<int32_t, NodeId> SlotAlloc;
  std::unordered_set<int32_t> PoisonedSlots;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    const Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    for (NodeId Root : Blk.Trees) {
      const Node &N = IL.node(Root);
      if (N.Op != ILOp::StoreLocal)
        continue;
      const Node &V = IL.node(N.Kids[0]);
      if (!isReferenceType(V.Type) &&
          !isReferenceType(IL.localType((uint32_t)N.A)))
        continue;
      if (V.Op == ILOp::New) {
        auto It = SlotAlloc.find(N.A);
        if (It == SlotAlloc.end())
          SlotAlloc[N.A] = N.Kids[0];
        else if (It->second != N.Kids[0])
          PoisonedSlots.insert(N.A);
      } else if (isReferenceType(IL.localType((uint32_t)N.A))) {
        PoisonedSlots.insert(N.A);
      }
    }
  }
  for (int32_t Slot : PoisonedSlots)
    SlotAlloc.erase(Slot);

  // A use is "safe" when the object stays a receiver: field access on it,
  // monitor, checks, comparisons. Everything else escapes.
  std::unordered_set<NodeId> Escaped;
  auto AliasesAlloc = [&](NodeId Ref, NodeId Alloc) {
    if (Ref == Alloc)
      return true;
    const Node &N = IL.node(Ref);
    if (N.Op == ILOp::LoadLocal) {
      auto It = SlotAlloc.find(N.A);
      return It != SlotAlloc.end() && It->second == Alloc;
    }
    return false;
  };

  for (NodeId Alloc : Allocs) {
    bool Escapes = false;
    for (NodeId Id = 0; Id < IL.numNodes() && !Escapes; ++Id) {
      const Node &N = IL.node(Id);
      Ctx.charge(0.05);
      for (unsigned KI = 0; KI < N.Kids.size() && !Escapes; ++KI) {
        NodeId Kid = N.Kids[KI];
        if (!AliasesAlloc(Kid, Alloc))
          continue;
        switch (N.Op) {
        case ILOp::LoadField:
        case ILOp::NullCheck:
        case ILOp::MonitorEnter:
        case ILOp::MonitorExit:
        case ILOp::InstanceOf:
        case ILOp::CastCheck:
        case ILOp::ExprStmt:
        case ILOp::Branch:
        case ILOp::CmpCond:
          break; // receiver/observer positions: no escape
        case ILOp::StoreField:
          if (KI != 0)
            Escapes = true; // stored INTO another object
          break;
        case ILOp::StoreLocal:
          // Only exclusive aliasing slots are allowed.
          if (!SlotAlloc.count(N.A) || SlotAlloc[N.A] != Alloc)
            Escapes = true;
          break;
        default:
          Escapes = true; // call argument, return, throw, array store, ...
          break;
        }
      }
    }
    if (Escapes)
      continue;
    Facts.NonEscaping.insert(Alloc);
    for (const auto &[Slot, A] : SlotAlloc)
      if (A == Alloc)
        Facts.ExclusiveSlots[Slot] = Alloc;
  }
  return Facts;
}

} // namespace

bool jitml::runEscapeAnalysis(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  EscapeFacts Facts = computeEscapes(Ctx);
  bool Changed = false;
  for (NodeId Alloc : Facts.NonEscaping) {
    if (CIL.node(Alloc).B & 1)
      continue;
    IL.node(Alloc).B |= 1; // codegen: frame-local allocation
    Ctx.noteChange(TransformationKind::EscapeAnalysis);
    Changed = true;
  }
  return Changed;
}

bool jitml::runMonitorElision(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  EscapeFacts Facts = computeEscapes(Ctx);
  if (Facts.NonEscaping.empty())
    return false;
  auto GuardsNonEscaping = [&](NodeId Ref) {
    if (Facts.NonEscaping.count(Ref))
      return true;
    const Node &N = CIL.node(Ref);
    if (N.Op != ILOp::LoadLocal)
      return false;
    auto It = Facts.ExclusiveSlots.find(N.A);
    return It != Facts.ExclusiveSlots.end();
  };
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    for (size_t TI = 0; TI < Blk.Trees.size();) {
      const Node &N = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      bool IsMonitor =
          N.Op == ILOp::MonitorEnter || N.Op == ILOp::MonitorExit;
      if (IsMonitor && GuardsNonEscaping(N.Kids[0])) {
        Block &MBlk = IL.block(B);
        MBlk.Trees.erase(MBlk.Trees.begin() + (std::ptrdiff_t)TI);
        Ctx.noteChange(TransformationKind::MonitorElision);
        Changed = true;
        continue;
      }
      ++TI;
    }
  }
  return Changed;
}
