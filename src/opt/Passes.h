//===- opt/Passes.h - Pass engine entry points ------------------*- C++ -*-===//
///
/// \file
/// Entry points of the optimization pass engines. Each engine mutates the
/// IL in place, charges compile effort to the PassContext, and returns
/// whether it changed anything. The Optimizer dispatches TransformationKind
/// values to these engines (several kinds share an engine with different
/// parameters, e.g. the three inlining tiers).
///
//===----------------------------------------------------------------------===//

#ifndef JITML_OPT_PASSES_H
#define JITML_OPT_PASSES_H

#include "opt/PassContext.h"

namespace jitml {

// FoldSimplify.cpp — expression-level rewrites.
bool runConstantFolding(PassContext &Ctx);
bool runExpressionSimplification(PassContext &Ctx);
bool runStrengthReduction(PassContext &Ctx);
bool runReassociation(PassContext &Ctx);
bool runSignExtensionElimination(PassContext &Ctx);
bool runFPSimplification(PassContext &Ctx);
bool runFPStrengthReduction(PassContext &Ctx);
bool runBCDSimplification(PassContext &Ctx);
bool runLongDoubleFastPath(PassContext &Ctx);

// LocalOpt.cpp — block-scoped transformations.
bool runLocalCopyPropagation(PassContext &Ctx);
bool runLocalValueNumbering(PassContext &Ctx);
bool runRedundantLoadElimination(PassContext &Ctx);
bool runDeadTreeElimination(PassContext &Ctx);
bool runDeadStoreElimination(PassContext &Ctx);
bool runRematerialization(PassContext &Ctx);
bool runStoreSinking(PassContext &Ctx);
bool runGuardMerging(PassContext &Ctx);
bool runThrowFastPathing(PassContext &Ctx);
bool runAllocationSinking(PassContext &Ctx);

// GlobalOpt.cpp — CFG-level transformations.
bool runGlobalCopyPropagation(PassContext &Ctx);
bool runGlobalValueNumbering(PassContext &Ctx);
bool runGlobalDeadStoreElimination(PassContext &Ctx);
bool runPartialRedundancyElimination(PassContext &Ctx);
bool runUnreachableCodeElimination(PassContext &Ctx);
bool runBlockMerging(PassContext &Ctx);
bool runBranchFolding(PassContext &Ctx);
bool runJumpThreading(PassContext &Ctx);
bool runTailDuplication(PassContext &Ctx);
bool runColdBlockOutlining(PassContext &Ctx);

// Checks.cpp — runtime check eliminations.
bool runNullCheckElimination(PassContext &Ctx);
bool runBoundsCheckElimination(PassContext &Ctx);
bool runDivCheckElimination(PassContext &Ctx);
bool runCastCheckElimination(PassContext &Ctx);
bool runImplicitExceptionChecks(PassContext &Ctx);

// Calls.cpp — call-site transformations.
bool runDevirtualization(PassContext &Ctx);
/// Shared inliner; tiers differ in per-callee node budget and total-growth
/// budget (trivial 12/64, small 40/256, aggressive 120/1024).
bool runInlining(PassContext &Ctx, uint32_t CalleeNodeBudget,
                 uint32_t GrowthBudget);

// Objects.cpp — allocation/synchronization transformations.
bool runEscapeAnalysis(PassContext &Ctx);
bool runMonitorElision(PassContext &Ctx);

// Loops.cpp — loop transformations.
bool runLoopCanonicalization(PassContext &Ctx);
bool runLoopInvariantCodeMotion(PassContext &Ctx);
/// Shared unroller; Factor 0 requests full unrolling of short loops.
bool runLoopUnrolling(PassContext &Ctx, unsigned Factor);
bool runLoopPeeling(PassContext &Ctx);
bool runLoopBoundsVersioning(PassContext &Ctx);
bool runLoopStrengthReduction(PassContext &Ctx);
bool runInductionVariableElimination(PassContext &Ctx);
bool runEmptyLoopRemoval(PassContext &Ctx);
bool runIdiomRecognition(PassContext &Ctx);
bool runPrefetchInsertion(PassContext &Ctx);

} // namespace jitml

#endif // JITML_OPT_PASSES_H
