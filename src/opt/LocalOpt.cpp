//===- opt/LocalOpt.cpp - Block-scoped transformations --------------------===//
//
// Local copy propagation, local value numbering (CSE), redundant load
// elimination, dead tree/store elimination, rematerialization, store
// sinking, guard merging, throw fast-pathing, and allocation sinking.
//
// All of these respect the IL's evaluate-at-first-reference (DAG) semantics:
// commoning = making two parents reference one node; uncommoning
// (rematerialization) = cloning a shared node per parent.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include <unordered_map>

using namespace jitml;

namespace {

/// Kinds of kills that invalidate available expressions inside a block.
struct KillTracker {
  /// Epochs bump when the corresponding class of memory is clobbered.
  uint64_t FieldEpoch = 0;  ///< per-field granularity handled by key
  uint64_t ElemEpoch = 0;
  uint64_t GlobalEpoch = 0;
  std::unordered_map<int32_t, uint64_t> LocalEpoch; ///< per slot
  std::unordered_map<int32_t, uint64_t> FieldEpochOf;
  std::unordered_map<int32_t, uint64_t> GlobalEpochOf;
  uint64_t Clock = 1;

  void killLocal(int32_t Slot) { LocalEpoch[Slot] = ++Clock; }
  void killField(int32_t Field) {
    FieldEpochOf[Field] = ++Clock;
  }
  void killAllMemory() {
    ++Clock;
    FieldEpoch = Clock;
    ElemEpoch = Clock;
    GlobalEpoch = Clock;
  }
  void killElems() { ElemEpoch = ++Clock; }
  void killGlobal(int32_t Slot) { GlobalEpochOf[Slot] = ++Clock; }

  uint64_t epochFor(const Node &N) const {
    switch (N.Op) {
    case ILOp::LoadLocal: {
      auto It = LocalEpoch.find(N.A);
      return It == LocalEpoch.end() ? 0 : It->second;
    }
    case ILOp::LoadField: {
      auto It = FieldEpochOf.find(N.A);
      uint64_t PerField = It == FieldEpochOf.end() ? 0 : It->second;
      return std::max(PerField, FieldEpoch);
    }
    case ILOp::LoadElem:
      return ElemEpoch;
    case ILOp::LoadGlobal: {
      auto It = GlobalEpochOf.find(N.A);
      uint64_t PerSlot = It == GlobalEpochOf.end() ? 0 : It->second;
      return std::max(PerSlot, GlobalEpoch);
    }
    default:
      return 0; // ArrayLen is immutable; pure nodes never killed
    }
  }

  /// Applies the kills implied by executing statement \p Root.
  void applyStatement(const MethodIL &IL, NodeId Root) {
    const Node &N = IL.node(Root);
    switch (N.Op) {
    case ILOp::StoreLocal:
      killLocal(N.A);
      break;
    case ILOp::StoreField:
      killField(N.A);
      break;
    case ILOp::StoreElem:
      killElems();
      break;
    case ILOp::StoreGlobal:
      killGlobal(N.A);
      break;
    case ILOp::ArrayCopy:
      killElems();
      break;
    case ILOp::ExprStmt:
      if (IL.node(N.Kids[0]).Op == ILOp::Call)
        killAllMemory();
      break;
    case ILOp::MonitorEnter:
    case ILOp::MonitorExit:
      killAllMemory(); // synchronization is a full fence
      break;
    default:
      break;
    }
    // Calls nested under stores/returns also clobber memory.
    for (NodeId Kid : N.Kids)
      if (IL.node(Kid).Op == ILOp::Call)
        killAllMemory();
  }
};

/// Shared machinery for LocalValueNumbering and RedundantLoadElimination:
/// canonicalizes nodes within each block, replacing equal available
/// expressions by a single node. \p CommonMemoryReads selects whether
/// memory-reading leaves participate (RLE) or only register-pure
/// expressions (classic local CSE).
bool valueNumberBlocks(PassContext &Ctx, bool CommonMemoryReads,
                       bool CommonPure) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;

  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    KillTracker Kills;
    struct Avail {
      NodeId Id;
      uint64_t BirthEpoch; ///< epoch of the memory class when recorded
    };
    std::unordered_map<uint64_t, std::vector<Avail>> Table;
    std::unordered_map<NodeId, NodeId> Canon;

    // Recursive canonicalization; kid slots are written back only when
    // they actually change (mutable access bumps the IL epoch).
    auto Canonical = [&](auto &&Self, NodeId Id) -> NodeId {
      auto Found = Canon.find(Id);
      if (Found != Canon.end())
        return Found->second;
      Ctx.charge(1);
      for (unsigned KI = 0; KI < CIL.node(Id).numKids(); ++KI) {
        NodeId Kid = CIL.node(Id).Kids[KI];
        NodeId C = Self(Self, Kid);
        if (C != Kid) {
          IL.node(Id).Kids[KI] = C;
          Changed = true;
        }
      }
      const Node &N = CIL.node(Id);
      bool IsMemRead = readsMemory(N.Op) || N.Op == ILOp::LoadLocal;
      bool Eligible =
          !hasSideEffects(N.Op) && N.Op != ILOp::LoadException &&
          (IsMemRead ? CommonMemoryReads || N.Op == ILOp::LoadLocal
                     : CommonPure);
      // LoadLocal participates in both modes: it is the bridge that lets
      // either pass recognize repeated subtrees.
      if (!Eligible) {
        Canon[Id] = Id;
        return Id;
      }
      uint64_t H = shallowHashNode(N);
      uint64_t Birth = Kills.epochFor(N);
      auto &Bucket = Table[H];
      for (const Avail &A : Bucket) {
        if (A.Id == Id)
          continue;
        if (!shallowEqualNodes(CIL.node(A.Id), N))
          continue;
        // The recorded value must still be valid: no kill since birth.
        if (Kills.epochFor(CIL.node(A.Id)) != A.BirthEpoch)
          continue;
        Canon[Id] = A.Id;
        return A.Id;
      }
      Bucket.push_back({Id, Birth});
      Canon[Id] = Id;
      return Id;
    };

    for (NodeId Root : Blk.Trees) {
      for (unsigned KI = 0; KI < CIL.node(Root).numKids(); ++KI) {
        NodeId Kid = CIL.node(Root).Kids[KI];
        NodeId C = Canonical(Canonical, Kid);
        if (C != Kid) {
          IL.node(Root).Kids[KI] = C;
          Changed = true;
        }
      }
      Kills.applyStatement(CIL, Root);
    }
  }
  return Changed;
}

} // namespace

//===----------------------------------------------------------------------===//
// Local copy propagation: forward stored constants/copies to later loads.
//===----------------------------------------------------------------------===//

bool jitml::runLocalCopyPropagation(PassContext &Ctx) {
  const MethodIL &IL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    const Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    // Slot -> defining node (Const or LoadLocal of another slot).
    std::unordered_map<int32_t, NodeId> Defs;
    std::vector<bool> Visited(IL.numNodes(), false);

    auto Propagate = [&](auto &&Self, NodeId Id) -> void {
      if (Id < Visited.size() && Visited[Id])
        return;
      if (Id >= Visited.size())
        Visited.resize(IL.numNodes(), false);
      Visited[Id] = true;
      Ctx.charge(1);
      const Node &N = IL.node(Id);
      if (N.Op == ILOp::LoadLocal) {
        auto It = Defs.find(N.A);
        if (It != Defs.end()) {
          // Rewrite the load in place into a copy of its reaching def.
          // Under first-reference evaluation this is exact: the def value
          // cannot change between the store and this first reference.
          Ctx.rewriteToCopyOf(Id, It->second);
          Ctx.noteChange(TransformationKind::LocalCopyPropagation);
          Changed = true;
        }
        return;
      }
      for (NodeId Kid : N.Kids)
        Self(Self, Kid);
    };

    for (NodeId Root : Blk.Trees) {
      const Node &RootN = IL.node(Root);
      for (NodeId Kid : RootN.Kids)
        Propagate(Propagate, Kid);
      if (RootN.Op == ILOp::StoreLocal) {
        const Node &V = IL.node(RootN.Kids[0]);
        // Invalidate defs that referenced the overwritten slot.
        for (auto It = Defs.begin(); It != Defs.end();) {
          const Node &D = IL.node(It->second);
          bool Stale = It->first == RootN.A ||
                       (D.Op == ILOp::LoadLocal && D.A == RootN.A);
          It = Stale ? Defs.erase(It) : ++It;
        }
        if (V.Op == ILOp::Const ||
            (V.Op == ILOp::LoadLocal && V.A != RootN.A))
          Defs[RootN.A] = RootN.Kids[0];
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Local value numbering / redundant load elimination
//===----------------------------------------------------------------------===//

bool jitml::runLocalValueNumbering(PassContext &Ctx) {
  bool Changed = valueNumberBlocks(Ctx, /*CommonMemoryReads=*/false,
                                   /*CommonPure=*/true);
  if (Changed)
    Ctx.noteChange(TransformationKind::LocalValueNumbering);
  return Changed;
}

bool jitml::runRedundantLoadElimination(PassContext &Ctx) {
  bool Changed = valueNumberBlocks(Ctx, /*CommonMemoryReads=*/true,
                                   /*CommonPure=*/false);
  if (Changed)
    Ctx.noteChange(TransformationKind::RedundantLoadElimination);
  return Changed;
}

//===----------------------------------------------------------------------===//
// Dead tree elimination: drop anchors whose value is unused and pure.
//===----------------------------------------------------------------------===//

bool jitml::runDeadTreeElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  std::vector<uint32_t> Refs = computeRefCounts(CIL);
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    for (size_t TI = 0; TI < Blk.Trees.size();) {
      NodeId Root = Blk.Trees[TI];
      const Node &N = CIL.node(Root);
      Ctx.charge(1);
      if (N.Op != ILOp::ExprStmt) {
        ++TI;
        continue;
      }
      NodeId Child = N.Kids[0];
      bool SoleReference = Refs[Child] == 1; // only this anchor
      bool Removable = false;
      if (Ctx.isPureAndMemoryFree(Child)) {
        // Value is position-independent; later references (if any) will
        // compute the same thing.
        Removable = true;
      } else if (SoleReference && Ctx.isPure(Child)) {
        // Memory-reading but used nowhere else: the read is simply dropped.
        Removable = true;
      }
      if (!Removable) {
        ++TI;
        continue;
      }
      Block &MBlk = IL.block(B);
      MBlk.Trees.erase(MBlk.Trees.begin() + (std::ptrdiff_t)TI);
      Ctx.noteChange(TransformationKind::DeadTreeElimination);
      Changed = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Local dead store elimination: stores overwritten before any read.
//===----------------------------------------------------------------------===//

bool jitml::runDeadStoreElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    bool HasHandlers = !Blk.Handlers.empty();
    for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
      const Node &N = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (N.Op != ILOp::StoreLocal)
        continue;
      int32_t Slot = N.A;
      // Scan forward: a second store to the slot with no intervening load
      // of it makes this store dead. With handlers present, a throwing
      // statement in between could expose the stored value to the handler.
      bool Dead = false;
      for (size_t TJ = TI + 1; TJ < Blk.Trees.size(); ++TJ) {
        const Node &M = CIL.node(Blk.Trees[TJ]);
        bool ReadsSlot = false;
        std::vector<NodeId> Stack{Blk.Trees[TJ]};
        while (!Stack.empty()) {
          const Node &K = CIL.node(Stack.back());
          Stack.pop_back();
          if (K.Op == ILOp::LoadLocal && K.A == Slot)
            ReadsSlot = true;
          for (NodeId Kid : K.Kids)
            Stack.push_back(Kid);
        }
        if (ReadsSlot)
          break;
        if (HasHandlers && ilCanThrow(M.Op))
          break;
        if (M.Op == ILOp::ExprStmt && ilCanThrow(CIL.node(M.Kids[0]).Op) &&
            HasHandlers)
          break;
        if (M.Op == ILOp::StoreLocal && M.A == Slot) {
          Dead = true;
          break;
        }
        if (isTerminatorOp(M.Op))
          break;
      }
      if (!Dead)
        continue;
      // Keep evaluation position for memory-reading values by converting
      // the store into a plain anchor; DeadTreeElimination will drop it
      // when that is also safe.
      Node &Store = IL.node(Blk.Trees[TI]);
      Store.Op = ILOp::ExprStmt;
      Store.A = 0;
      Ctx.noteChange(TransformationKind::DeadStoreElimination);
      Changed = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Rematerialization: clone cheap shared nodes to shorten live ranges.
//===----------------------------------------------------------------------===//

bool jitml::runRematerialization(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  std::vector<uint32_t> Refs = computeRefCounts(CIL);
  const MethodInfo &M = CIL.methodInfo();
  bool Changed = false;

  // "Uses BigDecimal ... may not be eligible for rematerialization because
  // the code generated outweighs the benefits": skip decimal-typed trees
  // in such methods.
  bool AvoidDecimal = false;
  for (NodeId Id = 0; Id < CIL.numNodes() && !AvoidDecimal; ++Id) {
    const Node &N = CIL.node(Id);
    if (N.Op != ILOp::Call)
      continue;
    const MethodInfo &Callee = CIL.program().methodAt((uint32_t)N.A);
    if (Callee.ClassIndex >= 0 &&
        CIL.program().classAt((uint32_t)Callee.ClassIndex).Kind ==
            ClassKind::BigDecimal)
      AvoidDecimal = true;
  }
  (void)M;

  auto IsCheap = [&](NodeId Id) {
    const Node &N = CIL.node(Id);
    if (AvoidDecimal && isDecimalType(N.Type))
      return false;
    // Only re-materialize values that cost (at most) one cycle to rebuild:
    // constants and local loads. Recomputing arithmetic per reference
    // costs more than the spill it saves on most machines.
    return N.Op == ILOp::Const || N.Op == ILOp::LoadLocal;
  };

  constexpr uint32_t PhysRegs = 16;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    // Rematerialization trades recompute for register pressure. Pressure
    // comes from values that live ACROSS treetop boundaries (commoned
    // nodes evaluated in one statement and reused in a later one); when
    // the maximum number of such crossing values fits the register file,
    // cloning would only add cycles.
    std::unordered_map<NodeId, std::pair<size_t, size_t>> Span;
    for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
      std::vector<NodeId> Stack{Blk.Trees[TI]};
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        const Node &N = CIL.node(Id);
        if (N.Type != DataType::Void) {
          auto It = Span.find(Id);
          if (It == Span.end())
            Span.emplace(Id, std::make_pair(TI, TI));
          else
            It->second.second = TI;
        }
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);
      }
    }
    uint32_t MaxPressure = 0;
    for (size_t TI = 0; TI + 1 < Blk.Trees.size(); ++TI) {
      uint32_t Crossing = 0;
      for (const auto &[Id, FL] : Span)
        if (FL.first <= TI && FL.second > TI)
          ++Crossing;
      MaxPressure = std::max(MaxPressure, Crossing);
      Ctx.charge(0.2);
    }
    if (MaxPressure <= PhysRegs)
      continue;
    // A shared node first referenced in tree T1 and again in tree T2 keeps
    // a value live across treetops; cloning the second reference frees it.
    // Re-evaluating a cloned node must produce the value of the original's
    // *first* evaluation, so every local a candidate loads must not have
    // been stored since the candidate was first seen. Track a per-slot
    // store version and snapshot it when a node first appears.
    std::vector<bool> SeenInBlock(CIL.numNodes(), false);
    std::unordered_map<int32_t, uint32_t> SlotVersion;
    std::unordered_map<NodeId, std::vector<std::pair<int32_t, uint32_t>>>
        BirthVersions;

    auto LoadedSlots = [&](NodeId Id) {
      std::vector<int32_t> Slots;
      std::vector<NodeId> Stack{Id};
      while (!Stack.empty()) {
        const Node &N = CIL.node(Stack.back());
        Stack.pop_back();
        if (N.Op == ILOp::LoadLocal)
          Slots.push_back(N.A);
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);
      }
      return Slots;
    };
    auto StillCurrent = [&](NodeId Id) {
      auto It = BirthVersions.find(Id);
      if (It == BirthVersions.end())
        return true; // loads nothing mutable
      for (auto [Slot, Version] : It->second)
        if (SlotVersion[Slot] != Version)
          return false;
      return true;
    };

    for (NodeId Root : Blk.Trees) {
      std::vector<NodeId> Stack{Root};
      std::vector<NodeId> ThisTree;
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        ThisTree.push_back(Id);
        Ctx.charge(1);
        // Index-based kid access: cloneTree grows the node arena and would
        // invalidate references into it.
        for (unsigned KI = 0; KI < CIL.node(Id).numKids(); ++KI) {
          NodeId Kid = CIL.node(Id).Kids[KI];
          if (Kid < Refs.size() && Refs[Kid] > 1 && Kid < SeenInBlock.size() &&
              SeenInBlock[Kid] && IsCheap(Kid) && StillCurrent(Kid)) {
            NodeId Clone = Ctx.cloneTree(Kid, nullptr);
            --Refs[Kid];
            IL.node(Id).Kids[KI] = Clone;
            Ctx.noteChange(TransformationKind::Rematerialization);
            Changed = true;
            continue;
          }
          Stack.push_back(Kid);
        }
      }
      if (SeenInBlock.size() < CIL.numNodes())
        SeenInBlock.resize(CIL.numNodes(), false);
      for (NodeId Id : ThisTree) {
        if (!SeenInBlock[Id]) {
          SeenInBlock[Id] = true;
          std::vector<std::pair<int32_t, uint32_t>> Snapshot;
          for (int32_t Slot : LoadedSlots(Id))
            Snapshot.emplace_back(Slot, SlotVersion[Slot]);
          if (!Snapshot.empty())
            BirthVersions.emplace(Id, std::move(Snapshot));
        }
      }
      const Node &RootN = CIL.node(Root);
      if (RootN.Op == ILOp::StoreLocal)
        ++SlotVersion[RootN.A];
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Store sinking: move local stores toward their first use.
//===----------------------------------------------------------------------===//

bool jitml::runStoreSinking(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable || Blk.Trees.size() < 3)
      continue;
    bool HasHandlers = !Blk.Handlers.empty();
    for (size_t TI = 0; TI + 2 < Blk.Trees.size(); ++TI) {
      NodeId Root = Blk.Trees[TI];
      const Node &N = CIL.node(Root);
      if (N.Op != ILOp::StoreLocal)
        continue;
      int32_t Slot = N.A;
      bool ValueReadsMemory = !Ctx.isPureAndMemoryFree(N.Kids[0]);
      // Slots the candidate's value tree reads: an intervening store to
      // any of them would change the (re-)evaluated value.
      std::vector<int32_t> InputSlots;
      {
        std::vector<NodeId> Stack{N.Kids[0]};
        while (!Stack.empty()) {
          const Node &K = CIL.node(Stack.back());
          Stack.pop_back();
          if (K.Op == ILOp::LoadLocal)
            InputSlots.push_back(K.A);
          for (NodeId Kid : K.Kids)
            Stack.push_back(Kid);
        }
      }
      // Find the furthest sink position.
      size_t Target = TI;
      for (size_t TJ = TI + 1; TJ + 1 < Blk.Trees.size(); ++TJ) {
        const Node &M = CIL.node(Blk.Trees[TJ]);
        Ctx.charge(1);
        bool Blocks = false;
        std::vector<NodeId> Stack{Blk.Trees[TJ]};
        while (!Stack.empty() && !Blocks) {
          const Node &K = CIL.node(Stack.back());
          Stack.pop_back();
          if (K.Op == ILOp::LoadLocal && K.A == Slot)
            Blocks = true;
          for (NodeId Kid : K.Kids)
            Stack.push_back(Kid);
        }
        if (M.Op == ILOp::StoreLocal && M.A == Slot)
          Blocks = true;
        if (M.Op == ILOp::StoreLocal)
          for (int32_t In : InputSlots)
            if (M.A == In)
              Blocks = true;
        if (ValueReadsMemory &&
            (M.Op == ILOp::StoreField || M.Op == ILOp::StoreElem ||
             M.Op == ILOp::StoreGlobal || M.Op == ILOp::ArrayCopy ||
             M.Op == ILOp::MonitorEnter || M.Op == ILOp::MonitorExit))
          Blocks = true;
        if (ValueReadsMemory && M.Op == ILOp::ExprStmt &&
            CIL.node(M.Kids[0]).Op == ILOp::Call)
          Blocks = true;
        if (HasHandlers && ilCanThrow(M.Op))
          Blocks = true;
        if (Blocks)
          break;
        Target = TJ;
      }
      if (Target == TI)
        continue;
      Block &MBlk = IL.block(B);
      MBlk.Trees.erase(MBlk.Trees.begin() + (std::ptrdiff_t)TI);
      MBlk.Trees.insert(MBlk.Trees.begin() + (std::ptrdiff_t)Target, Root);
      Ctx.noteChange(TransformationKind::StoreSinking);
      Changed = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Guard merging: fold a null check into the bounds check that follows it.
//===----------------------------------------------------------------------===//

bool jitml::runGuardMerging(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    for (size_t TI = 0; TI + 1 < Blk.Trees.size(); ++TI) {
      const Node &N = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (N.Op != ILOp::NullCheck)
        continue;
      const Node &Next = CIL.node(Blk.Trees[TI + 1]);
      if (Next.Op != ILOp::BoundsCheck || Next.Kids[0] != N.Kids[0])
        continue;
      // Fuse: the bounds check now also performs the null check (B = 1 is
      // the fused flag the code generator honors with a single guard).
      IL.node(Blk.Trees[TI + 1]).B = 1;
      Block &MBlk = IL.block(B);
      MBlk.Trees.erase(MBlk.Trees.begin() + (std::ptrdiff_t)TI);
      Ctx.noteChange(TransformationKind::GuardMerging);
      Changed = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Throw fast-pathing: throws of locally allocated exceptions skip the
// expensive unwind bookkeeping.
//===----------------------------------------------------------------------===//

bool jitml::runThrowFastPathing(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable || Blk.Trees.empty())
      continue;
    const Node &Term = CIL.node(Blk.Trees.back());
    Ctx.charge(1);
    if (Term.Op != ILOp::Throw || Term.B == 1)
      continue;
    if (CIL.node(Term.Kids[0]).Op != ILOp::New)
      continue;
    IL.node(Blk.Trees.back()).B = 1;
    Ctx.noteChange(TransformationKind::ThrowFastPathing);
    Changed = true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Allocation sinking: drop allocations that are never used and sink anchors
// of used ones toward their first use.
//===----------------------------------------------------------------------===//

bool jitml::runAllocationSinking(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  std::vector<uint32_t> Refs = computeRefCounts(CIL);
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    for (size_t TI = 0; TI < Blk.Trees.size();) {
      const Node &N = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (N.Op != ILOp::ExprStmt) {
        ++TI;
        continue;
      }
      const Node &Child = CIL.node(N.Kids[0]);
      bool IsAlloc = Child.Op == ILOp::New || Child.Op == ILOp::NewArray;
      // A dead allocation has exactly one reference: this anchor. Plain
      // `new` has no user-visible side effect in this VM (no finalizers),
      // so it can be removed outright. NewArray's length operand must stay
      // pure (a negative length would throw).
      if (IsAlloc && Refs[N.Kids[0]] == 1 &&
          (Child.Op == ILOp::New ||
           (Child.Kids.size() == 1 && Ctx.isPure(Child.Kids[0])))) {
        Block &MBlk = IL.block(B);
        MBlk.Trees.erase(MBlk.Trees.begin() + (std::ptrdiff_t)TI);
        Ctx.noteChange(TransformationKind::AllocationSinking);
        Changed = true;
        continue;
      }
      ++TI;
    }
  }
  return Changed;
}
