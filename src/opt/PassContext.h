//===- opt/PassContext.h - Shared state for optimization passes -*- C++ -*===//
///
/// \file
/// The context handed to every pass engine: the IL under optimization,
/// compile-effort accounting (the C_i term of the ranking function, Eq. 2,
/// comes from here), and small IL-surgery helpers shared by many passes.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_OPT_PASSCONTEXT_H
#define JITML_OPT_PASSCONTEXT_H

#include "il/MethodIL.h"
#include "opt/Transformation.h"

#include <unordered_map>

namespace jitml {

class PassContext {
public:
  explicit PassContext(MethodIL &IL) : IL(IL) {}

  MethodIL &il() { return IL; }
  const Program &program() const { return IL.program(); }

  /// Charges \p Cycles of compile effort to the current pass.
  void charge(double Cycles) { CompileCycles += Cycles; }
  double compileCycles() const { return CompileCycles; }

  /// Statistics: how many times each pass reported a change.
  void noteChange(TransformationKind K) { ++Changes[(unsigned)K]; }
  uint32_t changesOf(TransformationKind K) const {
    auto It = Changes.find((unsigned)K);
    return It == Changes.end() ? 0 : It->second;
  }

  // --- IL surgery helpers (in-place node rewrites; every tree referencing
  // the node observes the new form, which is how passes "replace all uses").
  void rewriteToConstI(NodeId Id, DataType T, int64_t V);
  void rewriteToConstF(NodeId Id, DataType T, double V);
  void rewriteToLoadLocal(NodeId Id, DataType T, uint32_t Slot);
  /// Turns \p Id into a shallow copy of \p Source (same kids vector).
  void rewriteToCopyOf(NodeId Id, NodeId Source);

  /// Deep-clones the tree rooted at \p Root into fresh nodes. \p LocalMap,
  /// when non-null, remaps local slots (used by inlining and unrolling).
  NodeId cloneTree(NodeId Root,
                   const std::unordered_map<uint32_t, uint32_t> *LocalMap);

  /// True when evaluating \p Root can be skipped entirely: no side effects
  /// anywhere in the tree.
  bool isPure(NodeId Root) const;

  /// True when the tree's value depends only on its inputs (pure and reads
  /// no mutable memory) — the condition for commoning across statements.
  bool isPureAndMemoryFree(NodeId Root) const;

private:
  MethodIL &IL;
  double CompileCycles = 0.0;
  std::unordered_map<unsigned, uint32_t> Changes;
};

/// Counts how many times each node is referenced (as a treetop root or as a
/// child) across all reachable blocks. Passes use this to decide whether a
/// node is shared (DAG-commoned) before duplicating or deleting it.
std::vector<uint32_t> computeRefCounts(const MethodIL &IL);

/// Shallow structural equality of two nodes (same op/type/payload and the
/// same child ids) — the equivalence used by value numbering.
bool shallowEqualNodes(const Node &A, const Node &B);

/// Hash matching shallowEqualNodes.
uint64_t shallowHashNode(const Node &N);

} // namespace jitml

#endif // JITML_OPT_PASSCONTEXT_H
