//===- opt/PassContext.h - Shared state for optimization passes -*- C++ -*===//
///
/// \file
/// The context handed to every pass engine: the IL under optimization,
/// compile-effort accounting (the C_i term of the ranking function, Eq. 2,
/// comes from here), small IL-surgery helpers shared by many passes, and
/// the epoch-keyed analysis caches (LoopInfo / dominators / guard facts)
/// that let a 170-entry scorching plan reuse a CFG analysis across passes
/// instead of rebuilding it at every consumer.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_OPT_PASSCONTEXT_H
#define JITML_OPT_PASSCONTEXT_H

#include "il/Dominators.h"
#include "il/LoopInfo.h"
#include "il/MethodIL.h"
#include "opt/Transformation.h"

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

namespace jitml {

/// One run-length-encoded charge() call sequence entry: \p Amount charged
/// \p Count consecutive times. The pass memo records a no-change body's
/// charges in this form and replays them addition-by-addition on a hit, so
/// the CompileCycles accumulator sees bit-identical arithmetic (FP addition
/// is not associative; charging one summed total would drift in the last
/// ULPs relative to a real rerun).
struct ChargeRec {
  double Amount;
  uint32_t Count;
};

class PassContext {
public:
  explicit PassContext(MethodIL &IL) : IL(IL) {}

  MethodIL &il() { return IL; }
  /// Const view of the IL for reads. Prefer this inside analyses and scan
  /// loops: the mutable node()/block() accessors bump the modification
  /// epoch (they must assume a write), which costs analysis-cache and
  /// memoization hit-rate.
  const MethodIL &cil() const { return IL; }
  const Program &program() const { return IL.program(); }

  /// Charges \p Cycles of compile effort to the current pass.
  void charge(double Cycles) {
    CompileCycles += Cycles;
    if (ChargeLog) {
      if (!ChargeLog->empty() && ChargeLog->back().Amount == Cycles)
        ++ChargeLog->back().Count;
      else
        ChargeLog->push_back({Cycles, 1});
    }
  }
  double compileCycles() const { return CompileCycles; }

  /// While non-null, every charge() is appended (run-length encoded) to
  /// \p Log. The optimizer records a memo candidate's body charges this
  /// way and replays them verbatim on a hit.
  void setChargeLog(std::vector<ChargeRec> *Log) { ChargeLog = Log; }

  /// Statistics: how many times each pass reported a change.
  void noteChange(TransformationKind K) { ++Changes[(unsigned)K]; }
  uint32_t changesOf(TransformationKind K) const {
    return Changes[(unsigned)K];
  }

  // --- Epoch-cached CFG analyses ---
  // Valid for the IL's current modification epoch; rebuilt on first use
  // after any IL change (and always when memoEnabled() is off). The
  // returned reference is stable until the next IL mutation *through this
  // context's accessors* triggers a rebuild on the following call — passes
  // take the reference once at entry, exactly matching the lifetime the
  // old pass-local `LoopInfo LI(IL)` had.
  const LoopInfo &loopInfo();
  const DominatorTree &dominators();
  const GuardFacts &guardFacts();

  // --- IL surgery helpers (in-place node rewrites; every tree referencing
  // the node observes the new form, which is how passes "replace all uses").
  void rewriteToConstI(NodeId Id, DataType T, int64_t V);
  void rewriteToConstF(NodeId Id, DataType T, double V);
  void rewriteToLoadLocal(NodeId Id, DataType T, uint32_t Slot);
  /// Turns \p Id into a shallow copy of \p Source (same kid ids).
  void rewriteToCopyOf(NodeId Id, NodeId Source);

  /// Deep-clones the tree rooted at \p Root into fresh nodes. \p LocalMap,
  /// when non-null, remaps local slots (used by inlining and unrolling).
  NodeId cloneTree(NodeId Root,
                   const std::unordered_map<uint32_t, uint32_t> *LocalMap);

  /// True when evaluating \p Root can be skipped entirely: no side effects
  /// anywhere in the tree.
  bool isPure(NodeId Root) const;

  /// True when the tree's value depends only on its inputs (pure and reads
  /// no mutable memory) — the condition for commoning across statements.
  bool isPureAndMemoryFree(NodeId Root) const;

private:
  MethodIL &IL;
  double CompileCycles = 0.0;
  std::vector<ChargeRec> *ChargeLog = nullptr;
  /// Flat per-kind change counters (NumTransformations is small and fixed;
  /// the old unordered_map hashed on every noteChange in the hot loop).
  std::array<uint32_t, NumTransformations> Changes{};

  std::unique_ptr<LoopInfo> CachedLI;
  uint64_t LIEpoch = 0;
  std::unique_ptr<DominatorTree> CachedDT;
  uint64_t DTEpoch = 0;
  std::unique_ptr<GuardFacts> CachedFacts;
  uint64_t FactsEpoch = 0;
};

/// Counts how many times each node is referenced (as a treetop root or as a
/// child) across all reachable blocks. Passes use this to decide whether a
/// node is shared (DAG-commoned) before duplicating or deleting it.
std::vector<uint32_t> computeRefCounts(const MethodIL &IL);

/// Shallow structural equality of two nodes (same op/type/payload and the
/// same child ids) — the equivalence used by value numbering.
bool shallowEqualNodes(const Node &A, const Node &B);

/// Hash matching shallowEqualNodes.
uint64_t shallowHashNode(const Node &N);

} // namespace jitml

#endif // JITML_OPT_PASSCONTEXT_H
