//===- codegen/NativeInst.h - Simulated native ISA --------------*- C++ -*-===//
///
/// \file
/// The target of the code generator: a register-machine ISA executed by
/// runtime::NativeExecutor under a deterministic cycle cost model. The ISA
/// is the stand-in for the physical targets the paper's compiler supports;
/// its cost model (CostModel.h) is where code quality becomes measurable
/// time, which is what the ranking function (Eq. 2) consumes.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_CODEGEN_NATIVEINST_H
#define JITML_CODEGEN_NATIVEINST_H

#include "bytecode/Type.h"
#include "opt/Plan.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jitml {

enum class NOp : uint8_t {
  Nop = 0,
  ConstI, ///< Dst <- Imm
  ConstF, ///< Dst <- FImm
  Move,   ///< Dst <- A
  LdLoc,  ///< Dst <- locals[Aux]
  StLoc,  ///< locals[Aux] <- A
  LdGlob, ///< Dst <- globals[Aux]
  StGlob, ///< globals[Aux] <- A
  LdFld,  ///< Dst <- heap[A].field[Aux]
  StFld,  ///< heap[A].field[Aux] <- B
  LdElem, ///< Dst <- heap[A][B]
  StElem, ///< heap[A][B] <- C (C passed via Args[0])
  ArrLen, ///< Dst <- length(heap[A])
  LdExc,  ///< Dst <- in-flight exception
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Neg,
  Shl,
  Shr,
  Or,
  And,
  Xor,
  Cmp3,    ///< Dst <- three-way(A, B)
  CmpCond, ///< Dst <- (A <Aux> B) ? 1 : 0
  Conv,    ///< Dst <- convert A from type Aux to T
  Br,      ///< if (A <Aux> B) goto block SuccTaken else SuccFall
  Jmp,     ///< goto block SuccTaken
  CallM,   ///< Dst <- call method Aux with Args
  Ret,     ///< return A (A == NoReg for void)
  ThrowR,  ///< raise heap ref in A
  NewObj,  ///< Dst <- allocate class Aux
  NewArr,  ///< Dst <- allocate array of T, length A
  NewMulti,///< Dst <- allocate Aux-dimensional array, lengths in Args
  InstOf,  ///< Dst <- A instanceof class Aux
  ChkCast, ///< trap unless A instanceof class Aux
  MonEnter,
  MonExit,
  NullChk, ///< trap when A is null
  BndChk,  ///< trap unless 0 <= B < length(heap[A])
  DivChk,  ///< trap when A == 0
  ArrCopy, ///< arraycopy(Args[0..4])
  ArrCmp,  ///< Dst <- compare arrays A, B
};

constexpr uint16_t NoReg = UINT16_MAX;

/// Instruction flags (cost-model relevant facts established by the
/// optimizer / codegen passes).
enum NativeFlag : uint8_t {
  NF_ImplicitCheck = 1 << 0, ///< folded into a hardware trap: free
  NF_FusedNull = 1 << 1,     ///< bounds check also covers the null check
  NF_Prefetched = 1 << 2,    ///< strided access, prefetcher hides latency
  NF_StackAlloc = 1 << 3,    ///< escape analysis: frame-local allocation
  NF_EncodedConst = 1 << 4,  ///< constant encoded into its user: free
  NF_FastThrow = 1 << 5,     ///< throw fast path (locally allocated)
};

struct NativeInst {
  NOp Op = NOp::Nop;
  DataType T = DataType::Void;
  uint16_t Dst = NoReg;
  uint16_t A = NoReg;
  uint16_t B = NoReg;
  int32_t Aux = 0; ///< slot/field/class/method/cond/source-type payload
  int64_t Imm = 0;
  double FImm = 0.0;
  uint8_t Flags = 0;
  std::vector<uint16_t> Args; ///< call arguments / multi-array lengths

  bool hasFlag(NativeFlag F) const { return (Flags & F) != 0; }
};

/// One native basic block (mirrors the IL block it was lowered from).
struct NativeBlock {
  std::vector<NativeInst> Insts;
  int32_t SuccTaken = -1;
  int32_t SuccFall = -1;
  /// (handler native block, class filter) pairs, innermost first.
  std::vector<std::pair<int32_t, int32_t>> Handlers;
  bool Cold = false;
  /// Extra cycles charged on each entry of this block, modeling register
  /// spills when the block needs more virtual registers than the machine
  /// has physical ones.
  double SpillPenalty = 0.0;
};

/// A fully compiled method body.
struct NativeMethod {
  uint32_t MethodIndex = 0;
  OptLevel Level = OptLevel::Cold;
  std::vector<NativeBlock> Blocks;
  /// Emission order of the blocks; control transfer to the next block in
  /// layout order is free, any other transfer pays the taken-branch cost.
  std::vector<uint32_t> Layout;
  uint32_t Entry = 0;
  uint32_t NumVRegs = 0;
  uint32_t NumLocals = 0;
  bool Leaf = false; ///< no calls: frame setup is cheaper
  /// Instruction-cache pressure factor >= 1.0 derived from warm code size;
  /// every executed cycle in this method is scaled by it.
  double ICacheFactor = 1.0;
  /// Simulated compile cycles spent by code generation (added to the
  /// optimizer's effort to form the method's total compile time).
  double CompileCycles = 0.0;

  uint32_t totalInsts() const {
    uint32_t N = 0;
    for (const NativeBlock &B : Blocks)
      N += (uint32_t)B.Insts.size();
    return N;
  }
};

const char *nOpName(NOp Op);

/// Disassembles one instruction (debugging aid).
std::string printNativeInst(const NativeInst &I);

/// Disassembles a whole method in layout order.
std::string printNativeMethod(const NativeMethod &M);

} // namespace jitml

#endif // JITML_CODEGEN_NATIVEINST_H
