//===- codegen/CostModel.h - Cycle costs of the simulated machine -*-C++-*-===//
///
/// \file
/// The deterministic cycle cost model of the simulated machine. Execution
/// time in this reproduction is "cycles charged while interpreting native
/// code under this model"; compile time is "cycles charged by optimizer and
/// codegen work". Both feed the ranking function V = R/I + C/T_h (Eq. 2).
///
/// The constants encode the usual relative costs: memory traffic and
/// allocation are expensive, ALU is cheap, calls carry fixed overhead,
/// decimal/long-double extension arithmetic is microcoded (slow), taken
/// branches and icache misses add up.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_CODEGEN_COSTMODEL_H
#define JITML_CODEGEN_COSTMODEL_H

#include "codegen/NativeInst.h"

namespace jitml {

/// Tunable cost-model constants (cycles).
struct CostModel {
  double Alu = 1.0;
  double MulCost = 3.0;
  double DivCost = 12.0;
  double FpAlu = 2.0;
  double FpDiv = 10.0;
  double LongDoubleFactor = 4.0;  ///< multiplier for LongDouble arithmetic
  double DecimalFactor = 6.0;     ///< multiplier for packed/zoned (BCD)
  double ConstCost = 1.0;         ///< materializing a constant
  double MoveCost = 1.0;
  double LocalAccess = 1.0;
  double GlobalAccess = 3.0;
  double FieldAccess = 4.0;
  double ElemAccess = 4.0;
  double ElemPrefetched = 1.5;    ///< strided access with prefetch hint
  double CheckCost = 1.0;         ///< explicit null/div check
  double BoundsCost = 2.0;
  double CastCheckCost = 4.0;
  double InstanceOfCost = 4.0;
  double AllocObject = 24.0;
  double AllocStack = 4.0;        ///< escape-analyzed allocation
  double AllocArrayBase = 24.0;
  double AllocArrayPerElem = 0.5;
  double MonitorCost = 20.0;
  double ThrowCost = 60.0;
  double ThrowFastCost = 12.0;
  double UnwindPerFrame = 30.0;
  double BranchCost = 1.0;
  double BranchTakenExtra = 2.0;  ///< transfer away from layout order
  double CallOverhead = 16.0;     ///< frame setup + spill at call sites
  double LeafCallOverhead = 6.0;  ///< callee is a leaf routine
  double ReturnCost = 2.0;
  double ArrayCopyBase = 10.0;
  double ArrayCopyPerElem = 0.25;
  double ArrayCmpBase = 8.0;
  double ArrayCmpPerElem = 0.5;
  double StallCost = 1.0;         ///< result used by the very next inst
  double SpillCost = 2.0;         ///< per vreg above the register file
  unsigned PhysRegs = 16;
  /// Instruction-cache model: methods whose warm code exceeds this many
  /// instructions pay a growing per-cycle factor.
  double ICacheWarmCapacity = 1024.0;
  double ICachePressureSlope = 0.20;
  /// Interpreter: per-bytecode dispatch cost multiplier over native.
  double InterpDispatch = 8.0;

  /// Base issue cost of \p I (excluding dynamic effects such as stalls,
  /// taken branches and allocation sizes).
  double instCost(const NativeInst &I) const;

  /// ICache factor for a method with \p WarmInsts non-cold instructions.
  double icacheFactor(double WarmInsts) const {
    if (WarmInsts <= ICacheWarmCapacity)
      return 1.0;
    return 1.0 +
           ICachePressureSlope * (WarmInsts - ICacheWarmCapacity) /
               ICacheWarmCapacity;
  }

  /// The process-wide default model.
  static const CostModel &defaults();
};

} // namespace jitml

#endif // JITML_CODEGEN_COSTMODEL_H
