//===- codegen/NativeInst.cpp ---------------------------------------------===//

#include "codegen/NativeInst.h"

#include <cstdio>

using namespace jitml;

const char *jitml::nOpName(NOp Op) {
  switch (Op) {
  case NOp::Nop:
    return "nop";
  case NOp::ConstI:
    return "consti";
  case NOp::ConstF:
    return "constf";
  case NOp::Move:
    return "move";
  case NOp::LdLoc:
    return "ldloc";
  case NOp::StLoc:
    return "stloc";
  case NOp::LdGlob:
    return "ldglob";
  case NOp::StGlob:
    return "stglob";
  case NOp::LdFld:
    return "ldfld";
  case NOp::StFld:
    return "stfld";
  case NOp::LdElem:
    return "ldelem";
  case NOp::StElem:
    return "stelem";
  case NOp::ArrLen:
    return "arrlen";
  case NOp::LdExc:
    return "ldexc";
  case NOp::Add:
    return "add";
  case NOp::Sub:
    return "sub";
  case NOp::Mul:
    return "mul";
  case NOp::Div:
    return "div";
  case NOp::Rem:
    return "rem";
  case NOp::Neg:
    return "neg";
  case NOp::Shl:
    return "shl";
  case NOp::Shr:
    return "shr";
  case NOp::Or:
    return "or";
  case NOp::And:
    return "and";
  case NOp::Xor:
    return "xor";
  case NOp::Cmp3:
    return "cmp3";
  case NOp::CmpCond:
    return "cmpcond";
  case NOp::Conv:
    return "conv";
  case NOp::Br:
    return "br";
  case NOp::Jmp:
    return "jmp";
  case NOp::CallM:
    return "call";
  case NOp::Ret:
    return "ret";
  case NOp::ThrowR:
    return "throw";
  case NOp::NewObj:
    return "newobj";
  case NOp::NewArr:
    return "newarr";
  case NOp::NewMulti:
    return "newmulti";
  case NOp::InstOf:
    return "instof";
  case NOp::ChkCast:
    return "chkcast";
  case NOp::MonEnter:
    return "monenter";
  case NOp::MonExit:
    return "monexit";
  case NOp::NullChk:
    return "nullchk";
  case NOp::BndChk:
    return "bndchk";
  case NOp::DivChk:
    return "divchk";
  case NOp::ArrCopy:
    return "arrcopy";
  case NOp::ArrCmp:
    return "arrcmp";
  }
  return "?";
}

std::string jitml::printNativeInst(const NativeInst &I) {
  char Buf[160];
  auto Reg = [](uint16_t R) {
    if (R == NoReg)
      return std::string("-");
    char B[16];
    std::snprintf(B, sizeof(B), "r%u", R);
    return std::string(B);
  };
  std::snprintf(Buf, sizeof(Buf), "%-9s %s <- %s, %s aux=%d imm=%lld%s%s%s%s",
                nOpName(I.Op), Reg(I.Dst).c_str(), Reg(I.A).c_str(),
                Reg(I.B).c_str(), I.Aux, (long long)I.Imm,
                I.hasFlag(NF_ImplicitCheck) ? " [implicit]" : "",
                I.hasFlag(NF_StackAlloc) ? " [stack]" : "",
                I.hasFlag(NF_EncodedConst) ? " [encoded]" : "",
                I.hasFlag(NF_Prefetched) ? " [prefetch]" : "");
  std::string Out = Buf;
  if (!I.Args.empty()) {
    Out += " args(";
    for (size_t K = 0; K < I.Args.size(); ++K) {
      if (K)
        Out += ',';
      Out += Reg(I.Args[K]);
    }
    Out += ')';
  }
  return Out;
}

std::string jitml::printNativeMethod(const NativeMethod &M) {
  std::string Out;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "native method #%u level=%s vregs=%u icache=%.3f%s\n",
                M.MethodIndex, optLevelName(M.Level), M.NumVRegs,
                M.ICacheFactor, M.Leaf ? " [leaf]" : "");
  Out += Buf;
  for (uint32_t B : M.Layout) {
    const NativeBlock &Blk = M.Blocks[B];
    std::snprintf(Buf, sizeof(Buf), "NB%u%s%s -> taken=%d fall=%d spill=%.1f\n",
                  B, B == M.Entry ? " [entry]" : "",
                  Blk.Cold ? " [cold]" : "", Blk.SuccTaken, Blk.SuccFall,
                  Blk.SpillPenalty);
    Out += Buf;
    for (const NativeInst &I : Blk.Insts) {
      Out += "  ";
      Out += printNativeInst(I);
      Out += '\n';
    }
  }
  return Out;
}
