//===- codegen/CodeGenerator.h - IL -> native lowering ----------*- C++ -*-===//
///
/// \file
/// The Code Generator of Figure 1: lowers optimized tree IL to the
/// simulated native ISA and runs the codegen-stage controllable
/// transformations (peephole, constant encoding, register coalescing,
/// instruction scheduling, profile-guided layout, leaf-routine
/// optimization) whose enablement arrives from the optimizer as a
/// TransformSet.
///
/// Lowering honors the IL's evaluate-at-first-reference semantics: each
/// node is emitted once per block, later references reuse its register.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_CODEGEN_CODEGENERATOR_H
#define JITML_CODEGEN_CODEGENERATOR_H

#include "codegen/CostModel.h"
#include "codegen/NativeInst.h"
#include "il/MethodIL.h"
#include "opt/Optimizer.h"

namespace jitml {

/// Lowers \p IL into native code. \p Options carries the enabled
/// codegen-stage transformations; \p Level is recorded for bookkeeping.
NativeMethod generateCode(const MethodIL &IL, const TransformSet &Options,
                          OptLevel Level,
                          const CostModel &CM = CostModel::defaults());

} // namespace jitml

#endif // JITML_CODEGEN_CODEGENERATOR_H
