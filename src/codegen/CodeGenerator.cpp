//===- codegen/CodeGenerator.cpp ------------------------------------------===//

#include "codegen/CodeGenerator.h"

#include <algorithm>
#include <unordered_map>

using namespace jitml;

namespace {

/// Lowers one method; native block ids equal IL block ids.
class Lowering {
public:
  Lowering(const MethodIL &IL, const TransformSet &Options, OptLevel Level,
           const CostModel &CM)
      : IL(IL), Options(Options), CM(CM) {
    Out.MethodIndex = IL.methodIndex();
    Out.Level = Level;
    Out.NumLocals = IL.numLocals();
    Out.Entry = IL.entryBlock();
  }

  NativeMethod run();

private:
  uint16_t freshReg() {
    assert(NextReg < NoReg && "virtual register file exhausted");
    return NextReg++;
  }

  NativeInst &emit(NOp Op, DataType T) {
    NativeInst I;
    I.Op = Op;
    I.T = T;
    Cur->Insts.push_back(std::move(I));
    Charge(8.0); // per-instruction emission effort
    return Cur->Insts.back();
  }

  void Charge(double C) { Out.CompileCycles += C; }

  /// Emits \p Id unless already materialized in this block; returns the
  /// register holding its value (NoReg for void-typed nodes).
  uint16_t value(NodeId Id);
  void statement(NodeId Root);
  void lowerBlock(BlockId B);

  // Codegen-stage passes.
  void peephole(NativeBlock &B);
  void encodeConstants(NativeBlock &B);
  void coalesce();
  void schedule(NativeBlock &B);
  void layout();
  void computePenalties();

  const MethodIL &IL;
  const TransformSet &Options;
  const CostModel &CM;
  NativeMethod Out;
  NativeBlock *Cur = nullptr;
  uint16_t NextReg = 0;
  std::unordered_map<NodeId, uint16_t> RegOf; ///< per-block node values
};

uint16_t Lowering::value(NodeId Id) {
  auto It = RegOf.find(Id);
  if (It != RegOf.end())
    return It->second;
  const Node &N = IL.node(Id);
  uint16_t Dst = NoReg;
  switch (N.Op) {
  case ILOp::Const: {
    Dst = freshReg();
    NativeInst &I = emit(isFloatType(N.Type) ? NOp::ConstF : NOp::ConstI,
                         N.Type);
    I.Dst = Dst;
    I.Imm = N.ConstI;
    I.FImm = N.ConstF;
    break;
  }
  case ILOp::LoadLocal: {
    Dst = freshReg();
    NativeInst &I = emit(NOp::LdLoc, N.Type);
    I.Dst = Dst;
    I.Aux = N.A;
    break;
  }
  case ILOp::LoadGlobal: {
    Dst = freshReg();
    NativeInst &I = emit(NOp::LdGlob, N.Type);
    I.Dst = Dst;
    I.Aux = N.A;
    break;
  }
  case ILOp::LoadField: {
    uint16_t Obj = value(N.Kids[0]);
    Dst = freshReg();
    NativeInst &I = emit(NOp::LdFld, N.Type);
    I.Dst = Dst;
    I.A = Obj;
    I.Aux = N.A;
    break;
  }
  case ILOp::LoadElem: {
    uint16_t Arr = value(N.Kids[0]);
    uint16_t Idx = value(N.Kids[1]);
    Dst = freshReg();
    NativeInst &I = emit(NOp::LdElem, N.Type);
    I.Dst = Dst;
    I.A = Arr;
    I.B = Idx;
    if (N.B & 1)
      I.Flags |= NF_Prefetched;
    break;
  }
  case ILOp::ArrayLen: {
    uint16_t Arr = value(N.Kids[0]);
    Dst = freshReg();
    NativeInst &I = emit(NOp::ArrLen, DataType::Int32);
    I.Dst = Dst;
    I.A = Arr;
    break;
  }
  case ILOp::LoadException: {
    Dst = freshReg();
    NativeInst &I = emit(NOp::LdExc, DataType::Object);
    I.Dst = Dst;
    break;
  }
  case ILOp::Add:
  case ILOp::Sub:
  case ILOp::Mul:
  case ILOp::Div:
  case ILOp::Rem:
  case ILOp::Shl:
  case ILOp::Shr:
  case ILOp::Or:
  case ILOp::And:
  case ILOp::Xor: {
    static const NOp Map[] = {NOp::Add, NOp::Sub, NOp::Mul, NOp::Div,
                              NOp::Rem, NOp::Neg, NOp::Shl, NOp::Shr,
                              NOp::Or,  NOp::And, NOp::Xor};
    uint16_t A = value(N.Kids[0]);
    uint16_t B = value(N.Kids[1]);
    Dst = freshReg();
    NativeInst &I =
        emit(Map[(unsigned)N.Op - (unsigned)ILOp::Add], N.Type);
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    break;
  }
  case ILOp::Neg: {
    uint16_t A = value(N.Kids[0]);
    Dst = freshReg();
    NativeInst &I = emit(NOp::Neg, N.Type);
    I.Dst = Dst;
    I.A = A;
    break;
  }
  case ILOp::Cmp: {
    uint16_t A = value(N.Kids[0]);
    uint16_t B = value(N.Kids[1]);
    Dst = freshReg();
    NativeInst &I = emit(NOp::Cmp3, (DataType)N.B);
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    break;
  }
  case ILOp::CmpCond: {
    uint16_t A = value(N.Kids[0]);
    uint16_t B = value(N.Kids[1]);
    Dst = freshReg();
    NativeInst &I = emit(NOp::CmpCond, DataType::Int32);
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    I.Aux = N.A;
    break;
  }
  case ILOp::Conv: {
    uint16_t A = value(N.Kids[0]);
    Dst = freshReg();
    NativeInst &I = emit(NOp::Conv, N.Type);
    I.Dst = Dst;
    I.A = A;
    I.Aux = N.A; // source type
    break;
  }
  case ILOp::Call: {
    std::vector<uint16_t> Args;
    Args.reserve(N.Kids.size());
    for (NodeId Kid : N.Kids)
      Args.push_back(value(Kid));
    if (N.Type != DataType::Void)
      Dst = freshReg();
    NativeInst &I = emit(NOp::CallM, N.Type);
    I.Dst = Dst;
    I.Aux = N.A;     // method index
    I.Imm = N.B;     // 1 = virtual dispatch
    I.Args = std::move(Args);
    break;
  }
  case ILOp::New: {
    Dst = freshReg();
    NativeInst &I = emit(NOp::NewObj, DataType::Object);
    I.Dst = Dst;
    I.Aux = N.A;
    if (N.B & 1)
      I.Flags |= NF_StackAlloc;
    break;
  }
  case ILOp::NewArray: {
    uint16_t Len = value(N.Kids[0]);
    Dst = freshReg();
    NativeInst &I = emit(NOp::NewArr, N.Type);
    I.Dst = Dst;
    I.A = Len;
    break;
  }
  case ILOp::NewMultiArray: {
    std::vector<uint16_t> Lens;
    for (NodeId Kid : N.Kids)
      Lens.push_back(value(Kid));
    Dst = freshReg();
    NativeInst &I = emit(NOp::NewMulti, N.Type);
    I.Dst = Dst;
    I.Aux = N.A;
    I.Args = std::move(Lens);
    break;
  }
  case ILOp::InstanceOf: {
    uint16_t Obj = value(N.Kids[0]);
    Dst = freshReg();
    NativeInst &I = emit(NOp::InstOf, DataType::Int32);
    I.Dst = Dst;
    I.A = Obj;
    I.Aux = N.A;
    break;
  }
  case ILOp::ArrayCmp: {
    uint16_t A = value(N.Kids[0]);
    uint16_t B = value(N.Kids[1]);
    Dst = freshReg();
    NativeInst &I = emit(NOp::ArrCmp, DataType::Int32);
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    break;
  }
  default:
    assert(false && "statement opcode in expression position");
    break;
  }
  RegOf[Id] = Dst;
  return Dst;
}

void Lowering::statement(NodeId Root) {
  const Node &N = IL.node(Root);
  switch (N.Op) {
  case ILOp::StoreLocal: {
    uint16_t V = value(N.Kids[0]);
    NativeInst &I = emit(NOp::StLoc, IL.node(N.Kids[0]).Type);
    I.A = V;
    I.Aux = N.A;
    break;
  }
  case ILOp::StoreGlobal: {
    uint16_t V = value(N.Kids[0]);
    NativeInst &I = emit(NOp::StGlob, IL.node(N.Kids[0]).Type);
    I.A = V;
    I.Aux = N.A;
    break;
  }
  case ILOp::StoreField: {
    uint16_t Obj = value(N.Kids[0]);
    uint16_t V = value(N.Kids[1]);
    NativeInst &I = emit(NOp::StFld, IL.node(N.Kids[1]).Type);
    I.A = Obj;
    I.B = V;
    I.Aux = N.A;
    break;
  }
  case ILOp::StoreElem: {
    uint16_t Arr = value(N.Kids[0]);
    uint16_t Idx = value(N.Kids[1]);
    uint16_t V = value(N.Kids[2]);
    NativeInst &I = emit(NOp::StElem, IL.node(N.Kids[2]).Type);
    I.A = Arr;
    I.B = Idx;
    I.Args = {V};
    break;
  }
  case ILOp::NullCheck: {
    uint16_t R = value(N.Kids[0]);
    NativeInst &I = emit(NOp::NullChk, DataType::Object);
    I.A = R;
    if (N.B & 1)
      I.Flags |= NF_ImplicitCheck;
    break;
  }
  case ILOp::BoundsCheck: {
    uint16_t Arr = value(N.Kids[0]);
    uint16_t Idx = value(N.Kids[1]);
    NativeInst &I = emit(NOp::BndChk, DataType::Int32);
    I.A = Arr;
    I.B = Idx;
    if (N.B & 1)
      I.Flags |= NF_FusedNull;
    break;
  }
  case ILOp::DivCheck: {
    uint16_t D = value(N.Kids[0]);
    NativeInst &I = emit(NOp::DivChk, IL.node(N.Kids[0]).Type);
    I.A = D;
    break;
  }
  case ILOp::CastCheck: {
    uint16_t Obj = value(N.Kids[0]);
    NativeInst &I = emit(NOp::ChkCast, DataType::Object);
    I.A = Obj;
    I.Aux = N.A;
    break;
  }
  case ILOp::MonitorEnter:
  case ILOp::MonitorExit: {
    uint16_t Obj = value(N.Kids[0]);
    NativeInst &I = emit(
        N.Op == ILOp::MonitorEnter ? NOp::MonEnter : NOp::MonExit,
        DataType::Object);
    I.A = Obj;
    break;
  }
  case ILOp::ArrayCopy: {
    std::vector<uint16_t> Args;
    for (NodeId Kid : N.Kids)
      Args.push_back(value(Kid));
    NativeInst &I = emit(NOp::ArrCopy, DataType::Void);
    I.Args = std::move(Args);
    break;
  }
  case ILOp::ExprStmt:
    value(N.Kids[0]); // evaluate for effect; value may be reused later
    break;
  case ILOp::Branch: {
    uint16_t A = value(N.Kids[0]);
    uint16_t B = value(N.Kids[1]);
    NativeInst &I = emit(NOp::Br, IL.node(N.Kids[0]).Type);
    I.A = A;
    I.B = B;
    I.Aux = N.A;
    break;
  }
  case ILOp::Goto:
    emit(NOp::Jmp, DataType::Void);
    break;
  case ILOp::Return: {
    uint16_t V = N.Kids.empty() ? NoReg : value(N.Kids[0]);
    NativeInst &I = emit(NOp::Ret, N.Kids.empty()
                                       ? DataType::Void
                                       : IL.node(N.Kids[0]).Type);
    I.A = V;
    break;
  }
  case ILOp::Throw: {
    uint16_t V = value(N.Kids[0]);
    NativeInst &I = emit(NOp::ThrowR, DataType::Object);
    I.A = V;
    if (N.B & 1)
      I.Flags |= NF_FastThrow;
    break;
  }
  default:
    // Bare expression used as a treetop (e.g. a discarded call emitted
    // directly). Evaluate it.
    value(Root);
    break;
  }
}

void Lowering::lowerBlock(BlockId B) {
  const Block &Blk = IL.block(B);
  Cur = &Out.Blocks[B];
  RegOf.clear();
  Cur->Cold = Blk.Cold;
  for (const HandlerRef &H : Blk.Handlers)
    Cur->Handlers.emplace_back((int32_t)H.Handler, H.ClassIndex);
  for (NodeId Tree : Blk.Trees)
    statement(Tree);
  if (Blk.Succs.size() >= 1)
    Cur->SuccTaken = (int32_t)Blk.Succs[0];
  if (Blk.Succs.size() >= 2)
    Cur->SuccFall = (int32_t)Blk.Succs[1];
  // A Jmp's single successor is "taken"; for Br, Succs[0] is the taken
  // target and Succs[1] the fallthrough, mirroring the IL convention.
}

//===--------------------------------------------------------------------===//
// Codegen-stage passes
//===--------------------------------------------------------------------===//

void Lowering::peephole(NativeBlock &B) {
  // Compare-branch fusion: CmpCond feeding only the block-ending Br
  // collapses into the Br itself.
  if (B.Insts.size() >= 2) {
    NativeInst &Br = B.Insts.back();
    if (Br.Op == NOp::Br) {
      // Find the producer of Br.A when Br tests `cc != 0`.
      for (size_t I = B.Insts.size() - 1; I-- > 0;) {
        NativeInst &P = B.Insts[I];
        if (P.Dst != Br.A)
          continue;
        bool OnlyUse = true;
        for (size_t J = 0; J < B.Insts.size(); ++J) {
          if (J == I)
            continue;
          const NativeInst &Q = B.Insts[J];
          if (Q.A == P.Dst || Q.B == P.Dst ||
              std::find(Q.Args.begin(), Q.Args.end(), P.Dst) !=
                  Q.Args.end()) {
            if (&Q != &Br) {
              OnlyUse = false;
              break;
            }
          }
        }
        if (P.Op == NOp::CmpCond && OnlyUse && Br.B != NoReg) {
          // Br currently: if (cc <cond> zero). Only the `cc != 0` and
          // `cc == 0` shapes appear from IL; rewrite both.
          const NativeInst *Zero = nullptr;
          for (const NativeInst &Q : B.Insts)
            if (Q.Dst == Br.B && Q.Op == NOp::ConstI && Q.Imm == 0)
              Zero = &Q;
          BcCond BrCond = (BcCond)Br.Aux;
          if (Zero && (BrCond == BcCond::Ne || BrCond == BcCond::Eq)) {
            BcCond Fused = (BcCond)P.Aux;
            if (BrCond == BcCond::Eq)
              Fused = negateCond(Fused);
            Br.A = P.A;
            Br.B = P.B;
            Br.Aux = (int32_t)Fused;
            Br.T = P.T;
            P.Op = NOp::Nop;
            P.Dst = NoReg;
          }
        }
        break;
      }
    }
  }
  // Drop nops.
  B.Insts.erase(std::remove_if(B.Insts.begin(), B.Insts.end(),
                               [](const NativeInst &I) {
                                 return I.Op == NOp::Nop;
                               }),
                B.Insts.end());
  Charge((double)B.Insts.size() * 2.4);
}

void Lowering::encodeConstants(NativeBlock &B) {
  // A small integer constant consumed inside this block gets encoded into
  // its users' immediate fields: the materializing instruction is free.
  for (NativeInst &I : B.Insts) {
    Charge(1.6);
    if (I.Op != NOp::ConstI || I.Imm < -32768 || I.Imm > 32767)
      continue;
    I.Flags |= NF_EncodedConst;
  }
}

void Lowering::coalesce() {
  // Virtual registers never live across blocks (cross-block values travel
  // through locals), so renumber per block with a free list.
  uint16_t MaxRegs = 0;
  for (NativeBlock &B : Out.Blocks) {
    std::unordered_map<uint16_t, uint16_t> Map;
    std::unordered_map<uint16_t, size_t> LastUse;
    for (size_t I = 0; I < B.Insts.size(); ++I) {
      const NativeInst &Inst = B.Insts[I];
      auto Track = [&](uint16_t R) {
        if (R != NoReg)
          LastUse[R] = I;
      };
      Track(Inst.A);
      Track(Inst.B);
      Track(Inst.Dst);
      for (uint16_t R : Inst.Args)
        Track(R);
    }
    std::vector<uint16_t> Free;
    uint16_t Next = 0;
    for (size_t I = 0; I < B.Insts.size(); ++I) {
      NativeInst &Inst = B.Insts[I];
      Charge(3.2);
      auto Remap = [&](uint16_t &R) {
        if (R == NoReg)
          return;
        auto It = Map.find(R);
        assert(It != Map.end() && "use of undefined virtual register");
        R = It->second;
      };
      Remap(Inst.A);
      Remap(Inst.B);
      for (uint16_t &R : Inst.Args)
        Remap(R);
      if (Inst.Dst != NoReg) {
        uint16_t Old = Inst.Dst;
        uint16_t NewR;
        if (!Free.empty()) {
          NewR = Free.back();
          Free.pop_back();
        } else {
          NewR = Next++;
        }
        Map[Old] = NewR;
        Inst.Dst = NewR;
      }
      // Free registers of operands at their last use (simple variant:
      // after the defining of Dst so a value is never clobbered by its
      // own user's definition in the same instruction).
      for (auto It = LastUse.begin(); It != LastUse.end();) {
        if (It->second == I) {
          auto M = Map.find(It->first);
          if (M != Map.end())
            Free.push_back(M->second);
          It = LastUse.erase(It);
        } else {
          ++It;
        }
      }
    }
    if (Next > MaxRegs)
      MaxRegs = Next;
  }
  Out.NumVRegs = MaxRegs;
}

void Lowering::schedule(NativeBlock &B) {
  // Window scheduling: between side-effect barriers, reorder pure register
  // computations so a value is not consumed by the immediately following
  // instruction (the executor charges a stall for that).
  auto IsPure = [](const NativeInst &I) {
    switch (I.Op) {
    case NOp::ConstI:
    case NOp::ConstF:
    case NOp::Move:
    case NOp::LdLoc:
    case NOp::Add:
    case NOp::Sub:
    case NOp::Mul:
    case NOp::Div:
    case NOp::Rem:
    case NOp::Neg:
    case NOp::Shl:
    case NOp::Shr:
    case NOp::Or:
    case NOp::And:
    case NOp::Xor:
    case NOp::Cmp3:
    case NOp::CmpCond:
    case NOp::Conv:
      return true;
    default:
      return false;
    }
  };
  size_t Start = 0;
  while (Start < B.Insts.size()) {
    size_t End = Start;
    while (End < B.Insts.size() && IsPure(B.Insts[End]))
      ++End;
    size_t Len = End - Start;
    if (Len >= 3) {
      // List-schedule the window: repeatedly pick a ready instruction
      // whose operands were not produced by the previously picked one.
      std::vector<NativeInst> Window(B.Insts.begin() + (std::ptrdiff_t)Start,
                                     B.Insts.begin() + (std::ptrdiff_t)End);
      std::vector<bool> Placed(Len, false);
      std::vector<NativeInst> Sched;
      Sched.reserve(Len);
      auto DefinedBefore = [&](uint16_t R, size_t UpTo) {
        if (R == NoReg)
          return true;
        // Defined outside the window?
        bool InWindow = false;
        for (const NativeInst &I : Window)
          if (I.Dst == R)
            InWindow = true;
        if (!InWindow)
          return true;
        for (size_t K = 0; K < UpTo; ++K)
          if (Sched[K].Dst == R)
            return true;
        return false;
      };
      // StLoc-free window of pure ops: every local-load order stays legal.
      while (Sched.size() < Len) {
        Charge(6.4);
        size_t Pick = SIZE_MAX;
        uint16_t PrevDst =
            Sched.empty() ? NoReg : Sched.back().Dst;
        // First preference: ready and not stalled on the previous result.
        for (size_t K = 0; K < Len; ++K) {
          if (Placed[K])
            continue;
          const NativeInst &I = Window[K];
          if (!DefinedBefore(I.A, Sched.size()) ||
              !DefinedBefore(I.B, Sched.size()))
            continue;
          bool Stalls = PrevDst != NoReg &&
                        (I.A == PrevDst || I.B == PrevDst);
          if (!Stalls) {
            Pick = K;
            break;
          }
          if (Pick == SIZE_MAX)
            Pick = K; // fall back to a stalled-but-ready instruction
        }
        assert(Pick != SIZE_MAX && "scheduling deadlock");
        Placed[Pick] = true;
        Sched.push_back(Window[Pick]);
      }
      std::copy(Sched.begin(), Sched.end(),
                B.Insts.begin() + (std::ptrdiff_t)Start);
    }
    Start = End + 1;
  }
}

void Lowering::layout() {
  std::vector<uint32_t> Warm, Cold;
  uint32_t NB = (uint32_t)Out.Blocks.size();
  std::vector<bool> Placed(NB, false);

  bool Profile = Options.contains(TransformationKind::ProfileGuidedLayout);
  if (Profile) {
    // Greedy chaining by frequency: follow the hotter successor while
    // possible, then start a new chain at the hottest unplaced block.
    auto FreqOf = [&](uint32_t B) { return IL.block(B).Frequency; };
    uint32_t Cursor = Out.Entry;
    while (true) {
      if (!Placed[Cursor] && IL.block(Cursor).Reachable &&
          !Out.Blocks[Cursor].Cold) {
        Placed[Cursor] = true;
        Warm.push_back(Cursor);
        // Prefer the more frequent unplaced successor.
        int32_t Next = -1;
        double BestF = -1;
        for (int32_t S : {Out.Blocks[Cursor].SuccTaken,
                          Out.Blocks[Cursor].SuccFall}) {
          if (S < 0 || Placed[(uint32_t)S] || Out.Blocks[(uint32_t)S].Cold)
            continue;
          if (FreqOf((uint32_t)S) > BestF) {
            BestF = FreqOf((uint32_t)S);
            Next = S;
          }
        }
        if (Next >= 0) {
          Cursor = (uint32_t)Next;
          continue;
        }
      }
      // Start a new chain.
      int32_t Start = -1;
      double BestF = -1;
      for (uint32_t B = 0; B < NB; ++B) {
        if (Placed[B] || !IL.block(B).Reachable || Out.Blocks[B].Cold)
          continue;
        if (FreqOf(B) > BestF) {
          BestF = FreqOf(B);
          Start = (int32_t)B;
        }
      }
      if (Start < 0)
        break;
      Cursor = (uint32_t)Start;
    }
  } else {
    for (uint32_t B = 0; B < NB; ++B)
      if (IL.block(B).Reachable && !Out.Blocks[B].Cold) {
        Warm.push_back(B);
        Placed[B] = true;
      }
  }
  for (uint32_t B = 0; B < NB; ++B)
    if (IL.block(B).Reachable && Out.Blocks[B].Cold)
      Cold.push_back(B);
  Out.Layout = Warm;
  Out.Layout.insert(Out.Layout.end(), Cold.begin(), Cold.end());
  Charge((double)NB * 4.0);

  // ICache pressure is driven by the code the front end actually touches:
  // outlined cold blocks do not pollute the warm stream.
  double WarmInsts = 0;
  for (uint32_t B : Warm)
    WarmInsts += (double)Out.Blocks[B].Insts.size();
  if (Cold.empty() && !Warm.empty()) {
    WarmInsts = 0;
    for (uint32_t B = 0; B < NB; ++B)
      if (IL.block(B).Reachable)
        WarmInsts += (double)Out.Blocks[B].Insts.size();
  }
  Out.ICacheFactor = CM.icacheFactor(WarmInsts);
}

void Lowering::computePenalties() {
  bool Coalesced = Options.contains(TransformationKind::RegisterCoalescing);
  for (NativeBlock &B : Out.Blocks) {
    // Pressure: with coalescing, registers were renumbered with reuse, so
    // the block's max register id approximates simultaneous liveness;
    // without it, every defined value occupies its own register for the
    // rest of the block.
    uint16_t MaxId = 0;
    std::unordered_map<uint16_t, bool> Defined;
    for (const NativeInst &I : B.Insts)
      if (I.Dst != NoReg) {
        Defined[I.Dst] = true;
        if (I.Dst > MaxId)
          MaxId = I.Dst;
      }
    double Pressure =
        Coalesced ? (double)MaxId + 1 : (double)Defined.size();
    B.SpillPenalty =
        std::max(0.0, Pressure - (double)CM.PhysRegs) * CM.SpillCost;
  }
}

NativeMethod Lowering::run() {
  Out.Blocks.resize(IL.numBlocks());
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    if (!IL.block(B).Reachable)
      continue;
    lowerBlock(B);
  }

  if (Options.contains(TransformationKind::PeepholeOptimization))
    for (NativeBlock &B : Out.Blocks)
      peephole(B);
  if (Options.contains(TransformationKind::ConstantEncoding))
    for (NativeBlock &B : Out.Blocks)
      encodeConstants(B);
  // Scheduling must run while registers are still in single-assignment
  // form; coalescing afterwards introduces register reuse that reordering
  // could clobber.
  if (Options.contains(TransformationKind::InstructionScheduling))
    for (NativeBlock &B : Out.Blocks)
      schedule(B);
  if (Options.contains(TransformationKind::RegisterCoalescing))
    coalesce();
  else
    Out.NumVRegs = NextReg;
  layout();
  computePenalties();

  // Leaf routines skip most of the frame setup.
  bool HasCall = false;
  for (const NativeBlock &B : Out.Blocks)
    for (const NativeInst &I : B.Insts)
      if (I.Op == NOp::CallM)
        HasCall = true;
  Out.Leaf =
      !HasCall && Options.contains(TransformationKind::LeafRoutineOptimization);
  return std::move(Out);
}

} // namespace

NativeMethod jitml::generateCode(const MethodIL &IL,
                                 const TransformSet &Options, OptLevel Level,
                                 const CostModel &CM) {
  return Lowering(IL, Options, Level, CM).run();
}
