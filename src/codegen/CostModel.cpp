//===- codegen/CostModel.cpp ----------------------------------------------===//

#include "codegen/CostModel.h"

using namespace jitml;

const CostModel &CostModel::defaults() {
  static const CostModel Model;
  return Model;
}

double CostModel::instCost(const NativeInst &I) const {
  auto TypeFactor = [this](DataType T) {
    if (T == DataType::LongDouble)
      return LongDoubleFactor;
    if (isDecimalType(T))
      return DecimalFactor;
    return 1.0;
  };
  switch (I.Op) {
  case NOp::Nop:
    return 0.0;
  case NOp::ConstI:
  case NOp::ConstF:
    return I.hasFlag(NF_EncodedConst) ? 0.0 : ConstCost;
  case NOp::Move:
    return MoveCost;
  case NOp::LdLoc:
  case NOp::StLoc:
  case NOp::LdExc:
    return LocalAccess;
  case NOp::LdGlob:
  case NOp::StGlob:
    return GlobalAccess;
  case NOp::LdFld:
  case NOp::StFld:
    return FieldAccess;
  case NOp::LdElem:
    return I.hasFlag(NF_Prefetched) ? ElemPrefetched : ElemAccess;
  case NOp::StElem:
    return ElemAccess;
  case NOp::ArrLen:
    return LocalAccess;
  case NOp::Add:
  case NOp::Sub:
  case NOp::Shl:
  case NOp::Shr:
  case NOp::Or:
  case NOp::And:
  case NOp::Xor:
  case NOp::Neg:
    return (isFloatType(I.T) ? FpAlu : Alu) * TypeFactor(I.T);
  case NOp::Mul:
    return (isFloatType(I.T) ? FpAlu * 2 : MulCost) * TypeFactor(I.T);
  case NOp::Div:
  case NOp::Rem:
    return (isFloatType(I.T) ? FpDiv : DivCost) * TypeFactor(I.T);
  case NOp::Cmp3:
  case NOp::CmpCond:
    return Alu * TypeFactor(I.T);
  case NOp::Conv:
    return Alu * std::max(TypeFactor(I.T), TypeFactor((DataType)I.Aux));
  case NOp::Br:
  case NOp::Jmp:
    return BranchCost;
  case NOp::CallM:
    return 0.0; // the executor charges CallOverhead / LeafCallOverhead
  case NOp::Ret:
    return ReturnCost;
  case NOp::ThrowR:
    return I.hasFlag(NF_FastThrow) ? ThrowFastCost : ThrowCost;
  case NOp::NewObj:
    return I.hasFlag(NF_StackAlloc) ? AllocStack : AllocObject;
  case NOp::NewArr:
  case NOp::NewMulti:
    return AllocArrayBase; // per-element part charged by the executor
  case NOp::InstOf:
    return InstanceOfCost;
  case NOp::ChkCast:
    return CastCheckCost;
  case NOp::MonEnter:
  case NOp::MonExit:
    return MonitorCost;
  case NOp::NullChk:
  case NOp::DivChk:
    return I.hasFlag(NF_ImplicitCheck) ? 0.0 : CheckCost;
  case NOp::BndChk:
    return BoundsCost + (I.hasFlag(NF_FusedNull) ? 0.0 : 0.0);
  case NOp::ArrCopy:
    return ArrayCopyBase; // per-element part charged by the executor
  case NOp::ArrCmp:
    return ArrayCmpBase;
  }
  return Alu;
}
