//===- runtime/CompilationControl.h - When/what to compile ------*- C++ -*-===//
///
/// \file
/// The Compilation Control of Figure 1: "decides when to compile (or
/// recompile) a method and which optimization level should be used", using
/// "a combination of invocation counters and time sampling to estimate the
/// hotness of a method" so methods that spend significant time in few
/// invocations are anticipated.
///
/// Each promotion level has three invocation triggers, picked by the
/// method's loop class (paper footnote 6): methods that contain loops are
/// compiled sooner than loop-free ones, and many-iteration loops sooner
/// still.
///
/// In collection mode the control additionally issues same-level
/// recompilation requests every N invocations, where N is computed from
/// the first eight invocations so the method accumulates roughly a fixed
/// amount of run time between compilations, clamped to [50, 50000]
/// (section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef JITML_RUNTIME_COMPILATIONCONTROL_H
#define JITML_RUNTIME_COMPILATIONCONTROL_H

#include "il/LoopInfo.h"
#include "opt/Plan.h"

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace jitml {

/// A decision to (re)compile a method.
struct CompileRequest {
  uint32_t MethodIndex = 0;
  OptLevel Level = OptLevel::Cold;
  /// True for collection-mode same-level recompiles (modifier exploration).
  bool IsExplorationRecompile = false;
};

class CompilationControl {
public:
  struct Config {
    bool Enabled = true;
    /// Collection mode: issue same-level exploration recompiles.
    bool CollectMode = false;
    /// Invocation triggers: [target level][loop class] — the method is
    /// promoted to `target level` when its invocations since the last
    /// compile reach the trigger. Loop classes order: NoLoops,
    /// MayHaveLoops, ManyIterationLoops (loopier compiles sooner).
    uint32_t InvocationTriggers[NumOptLevels][3] = {
        {12, 6, 3},          // interpret -> cold
        {30, 15, 8},         // cold -> warm
        {600, 300, 150},       // warm -> hot
        {20000, 12000, 8000},  // hot -> veryHot
        {80000, 50000, 30000}, // veryHot -> scorching
    };
    /// Time-sampling triggers (accumulated cycles since last compile);
    /// catches long-running methods with few invocations.
    double CycleTriggers[NumOptLevels] = {4e4, 6e5, 1.2e7, 1.5e8, 1e9};
    /// Collection mode: target accumulated cycles between exploration
    /// recompiles (the paper's "10 ms of running time").
    double ExplorationTargetCycles = 2e5;
    uint32_t ExplorationMinInvocations = 50;
    uint32_t ExplorationMaxInvocations = 50000;
  };

  explicit CompilationControl(const Config &C) : Cfg(C) {}

  /// Reports a finished invocation; returns a compile request when a
  /// trigger fired. \p LC is the method's loop class (computed once by the
  /// VM from the IL).
  std::optional<CompileRequest>
  onInvocationEnd(uint32_t MethodIndex, double Cycles, LoopClass LC);

  /// Marks \p MethodIndex as compiled at \p Level (resets trigger state).
  void noteCompiled(uint32_t MethodIndex, OptLevel Level);

  /// Freezes exploration recompiles for a method (strategy control says
  /// its modifier budget is exhausted).
  void freezeExploration(uint32_t MethodIndex) {
    stateOf(MethodIndex).ExplorationFrozen = true;
  }

  /// Current compiled level, or empty while still interpreted.
  std::optional<OptLevel> levelOf(uint32_t MethodIndex) const;

  /// Total invocations observed for a method.
  uint64_t invocationsOf(uint32_t MethodIndex) const;

  const Config &config() const { return Cfg; }

private:
  struct MethodState {
    bool Compiled = false;
    OptLevel Level = OptLevel::Cold;
    uint64_t Invocations = 0;
    uint64_t SinceCompile = 0;      ///< reset by every compile
    uint64_t SincePromotion = 0;    ///< reset only by level changes
    double CyclesSinceCompile = 0.0;
    double CyclesSincePromotion = 0.0;
    double FirstEightCycles = 0.0;
    uint32_t ExplorationThreshold = 0; ///< 0 until computed
    bool ExplorationFrozen = false;
  };

  MethodState &stateOf(uint32_t M) { return States[M]; }

  Config Cfg;
  std::unordered_map<uint32_t, MethodState> States;
};

} // namespace jitml

#endif // JITML_RUNTIME_COMPILATIONCONTROL_H
