//===- runtime/Heap.h - Simulated object heap -------------------*- C++ -*-===//
///
/// \file
/// The VM's heap: objects (field slots + class id) and arrays (element
/// slots + element type). References are indices into the heap table;
/// index 0 is the null reference. There is no collector — the heap lives
/// for one VM invocation and is dropped wholesale, which is sufficient for
/// the paper's experiments (allocation cost is modeled by the executor's
/// cost model, reclamation is not measured).
///
//===----------------------------------------------------------------------===//

#ifndef JITML_RUNTIME_HEAP_H
#define JITML_RUNTIME_HEAP_H

#include "bytecode/Program.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace jitml {

/// A runtime value: integer, floating and reference lanes. Instructions
/// are statically typed, so no tag is needed.
struct Value {
  int64_t I = 0;
  double F = 0.0;
  uint32_t R = 0;

  static Value ofI(int64_t V) {
    Value X;
    X.I = V;
    return X;
  }
  static Value ofF(double V) {
    Value X;
    X.F = V;
    return X;
  }
  static Value ofR(uint32_t V) {
    Value X;
    X.R = V;
    return X;
  }
};

constexpr uint32_t NullRef = 0;

/// Built-in exception kinds raised by the runtime itself. They are encoded
/// as negative class ids so they never match a program class filter.
enum class RtExceptionKind : int32_t {
  NullPointer = -2,
  ArrayIndexOutOfBounds = -3,
  ArithmeticDivByZero = -4,
  ClassCast = -5,
  NegativeArraySize = -6,
  StackOverflow = -7,
};

class Heap {
public:
  Heap() { Cells.emplace_back(); /* slot 0 = null */ }

  /// Allocates an instance of \p ClassIndex with zeroed fields.
  uint32_t allocObject(const Program &P, uint32_t ClassIndex);

  /// Allocates an array of \p Length elements of \p ElemType.
  uint32_t allocArray(DataType ElemType, uint32_t Length);

  /// Allocates a runtime exception object (kind encoded as class id).
  uint32_t allocException(RtExceptionKind Kind);

  bool isNull(uint32_t Ref) const { return Ref == NullRef; }

  /// Class index of an object, or the negative RtExceptionKind encoding,
  /// or -1 for arrays.
  int32_t classOf(uint32_t Ref) const { return cell(Ref).ClassIndex; }
  bool isArray(uint32_t Ref) const { return cell(Ref).IsArray; }
  DataType elemType(uint32_t Ref) const { return cell(Ref).ElemType; }

  uint32_t arrayLength(uint32_t Ref) const {
    return (uint32_t)cell(Ref).Slots.size();
  }
  uint32_t numFields(uint32_t Ref) const {
    return (uint32_t)cell(Ref).Slots.size();
  }

  Value getSlot(uint32_t Ref, uint32_t Index) const {
    const Cell &C = cell(Ref);
    assert(Index < C.Slots.size() && "heap slot out of range");
    return C.Slots[Index];
  }
  void setSlot(uint32_t Ref, uint32_t Index, Value V) {
    Cell &C = cell(Ref);
    assert(Index < C.Slots.size() && "heap slot out of range");
    C.Slots[Index] = V;
  }

  size_t numCells() const { return Cells.size(); }
  uint64_t bytesAllocated() const { return BytesAllocated; }

private:
  struct Cell {
    int32_t ClassIndex = -1;
    DataType ElemType = DataType::Void;
    bool IsArray = false;
    std::vector<Value> Slots;
  };

  const Cell &cell(uint32_t Ref) const {
    assert(Ref != NullRef && Ref < Cells.size() && "bad heap reference");
    return Cells[Ref];
  }
  Cell &cell(uint32_t Ref) {
    assert(Ref != NullRef && Ref < Cells.size() && "bad heap reference");
    return Cells[Ref];
  }

  std::vector<Cell> Cells;
  uint64_t BytesAllocated = 0;
};

} // namespace jitml

#endif // JITML_RUNTIME_HEAP_H
