//===- runtime/ExecInternal.h - Engine entry points (private) --*- C++ -*-===//
///
/// \file
/// Internal interface between the VM facade and its two execution engines.
/// Not installed; include only from runtime/*.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_RUNTIME_EXECINTERNAL_H
#define JITML_RUNTIME_EXECINTERNAL_H

#include "runtime/VirtualMachine.h"

namespace jitml {

/// Executes \p MethodIndex by interpreting its bytecode.
ExecResult interpretMethod(VirtualMachine &VM, uint32_t MethodIndex,
                           std::vector<Value> Args, unsigned Depth);

/// Executes compiled native code.
ExecResult executeNative(VirtualMachine &VM, const NativeMethod &Code,
                         std::vector<Value> Args, unsigned Depth);

} // namespace jitml

#endif // JITML_RUNTIME_EXECINTERNAL_H
