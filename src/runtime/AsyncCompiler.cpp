//===- runtime/AsyncCompiler.cpp ------------------------------------------===//

#include "runtime/AsyncCompiler.h"

#include "codegen/CodeGenerator.h"
#include "features/FeatureExtractor.h"
#include "il/ILGenerator.h"
#include "il/LoopInfo.h"
#include "opt/Optimizer.h"
#include "support/FaultInjection.h"
#include "verify/PassVerifier.h"

#include <stdexcept>

using namespace jitml;

CompiledBody jitml::compileMethodBody(const Program &P, uint32_t MethodIndex,
                                      const CompilationPlan &Plan,
                                      const PlanModifier &Modifier,
                                      const CostModel &Cost) {
  std::unique_ptr<MethodIL> IL = generateIL(P, MethodIndex);
  bool IlTrusted = true;
  if (verify::verifyIlMode() != verify::VerifyIlMode::Off)
    IlTrusted = verify::checkAfterPass(*IL, "ilgen", -1);
  LoopInfo::annotateFrequencies(*IL);
  FeatureVector Features = extractFeatures(*IL);

  // Broken ilgen output (only survivable under a collecting failure
  // handler) skips the pass pipeline: passes assume the invariants hold.
  OptimizeResult Opt =
      IlTrusted ? optimize(*IL, Plan, Modifier.enabledMask())
                : OptimizeResult();
  NativeMethod Native = generateCode(*IL, Opt.CodegenOptions, Plan.Level, Cost);

  CompiledBody Out;
  Out.CompileCycles = Opt.CompileCycles + Native.CompileCycles;
  Native.CompileCycles = Out.CompileCycles;
  Out.Features = Features;
  Out.Native = std::make_unique<NativeMethod>(std::move(Native));
  return Out;
}

FeatureVector jitml::extractMethodFeatures(const Program &P,
                                           uint32_t MethodIndex) {
  std::unique_ptr<MethodIL> IL = generateIL(P, MethodIndex);
  return extractFeatures(*IL);
}

AsyncCompilePipeline::AsyncCompilePipeline(const Program &P,
                                           const CostModel &Cost,
                                           CodeCache &Cache, Config C)
    : Prog(P), Cost(Cost), Cache(Cache), Cfg(C),
      Queue(C.QueueCapacity ? C.QueueCapacity : 1) {
  MetricRegistry &R = MetricRegistry::global();
  Tel.Compiled = &R.counter("pipeline.compiled");
  Tel.Installed = &R.counter("pipeline.installed");
  Tel.Stale = &R.counter("pipeline.stale");
  Tel.BatchPredicts = &R.counter("pipeline.batch_predicts");
  Tel.WorkerBusyUs = &R.counter("pipeline.worker_busy_us");
  Tel.CompileUs = &R.histogram("pipeline.compile");
  unsigned N = Cfg.Workers ? Cfg.Workers : 1;
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

AsyncCompilePipeline::~AsyncCompilePipeline() { shutdown(false); }

void AsyncCompilePipeline::setModifierHook(ModifierFn H) {
  std::lock_guard<std::mutex> Lock(HookMu);
  Hook = std::move(H);
}

void AsyncCompilePipeline::setBatchModifierHook(BatchModifierFn H) {
  std::lock_guard<std::mutex> Lock(HookMu);
  BatchHook = std::move(H);
}

CompilationQueue::EnqueueResult
AsyncCompilePipeline::request(uint32_t MethodIndex, OptLevel Level,
                              bool IsExploration, uint64_t Priority) {
  return Queue.enqueue(MethodIndex, Level, IsExploration, Priority);
}

std::vector<CompileCompletion> AsyncCompilePipeline::takeCompletions() {
  std::lock_guard<std::mutex> Lock(CompletionMu);
  std::vector<CompileCompletion> Out;
  Out.swap(Completions);
  CompletionsReady.store(false, std::memory_order_release);
  return Out;
}

void AsyncCompilePipeline::drain() { Queue.drain(); }

void AsyncCompilePipeline::shutdown(bool FinishPending) {
  {
    std::lock_guard<std::mutex> Lock(HookMu);
    if (ShutDown)
      return;
    ShutDown = true;
  }
  Queue.close(FinishPending);
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
}

std::vector<PlanModifier> AsyncCompilePipeline::modifiersForBatch(
    const std::vector<AsyncCompileTask> &Tasks,
    std::vector<CompileCompletion> &Partial) {
  ModifierFn H;
  BatchModifierFn BH;
  {
    std::lock_guard<std::mutex> Lock(HookMu);
    H = Hook;
    BH = BatchHook;
  }
  std::vector<PlanModifier> Mods(Tasks.size());
  if (!H && !BH)
    return Mods; // null modifiers: the out-of-the-box compiler

  if (BH && Tasks.size() > 1) {
    // One round trip for the whole backlog.
    std::vector<BatchPredictItem> Items(Tasks.size());
    for (size_t I = 0; I < Tasks.size(); ++I) {
      Items[I].MethodIndex = Tasks[I].MethodIndex;
      Items[I].Level = Tasks[I].Level;
      Items[I].Features = extractMethodFeatures(Prog, Tasks[I].MethodIndex);
    }
    BatchPredicts.fetch_add(1, std::memory_order_relaxed);
    Tel.BatchPredicts->add();
    try {
      std::vector<PlanModifier> Got = BH(Items);
      if (Got.size() == Tasks.size())
        return Got;
    } catch (...) {
      // fall through to the failure accounting below
    }
    for (CompileCompletion &C : Partial)
      C.HookFailed = true;
    return Mods; // null modifiers for the whole batch
  }

  for (size_t I = 0; I < Tasks.size(); ++I) {
    FeatureVector F = extractMethodFeatures(Prog, Tasks[I].MethodIndex);
    try {
      if (BH) {
        BatchPredicts.fetch_add(1, std::memory_order_relaxed);
        Tel.BatchPredicts->add();
        std::vector<BatchPredictItem> One(1);
        One[0] = {Tasks[I].MethodIndex, Tasks[I].Level, F};
        std::vector<PlanModifier> Got = BH(One);
        if (Got.size() != 1)
          throw std::runtime_error("batch hook size mismatch");
        Mods[I] = Got[0];
      } else {
        Mods[I] = H(Tasks[I].MethodIndex, Tasks[I].Level, F);
      }
    } catch (...) {
      Partial[I].HookFailed = true;
      Mods[I] = PlanModifier();
    }
  }
  return Mods;
}

void AsyncCompilePipeline::workerLoop(unsigned WorkerId) {
  for (;;) {
    std::vector<AsyncCompileTask> Tasks = Queue.dequeueBatch(Cfg.MaxPredictBatch);
    if (Tasks.empty())
      return; // closed and drained
    uint64_t BatchStartUs = telemetryNowUs();

    std::vector<CompileCompletion> Done(Tasks.size());
    std::vector<PlanModifier> Mods = modifiersForBatch(Tasks, Done);

    for (size_t I = 0; I < Tasks.size(); ++I) {
      const AsyncCompileTask &T = Tasks[I];
      // Simulated slow worker: the method stays in flight (dequeued but
      // not noteDone), stretching the window drain()/close() must survive.
      uint64_t StallMs = 1;
      if (JITML_FAULT_POINT_ARG("pipeline.worker.stall", StallMs))
        faultDelayMs(StallMs);
      uint64_t StartUs = telemetryNowUs();
      CompiledBody Body = compileMethodBody(Prog, T.MethodIndex,
                                            planForLevel(T.Level), Mods[I],
                                            Cost);
      CompileCompletion &C = Done[I];
      C.MethodIndex = T.MethodIndex;
      C.Level = T.Level;
      C.Modifier = Mods[I];
      C.Features = Body.Features;
      C.CompileCycles = Body.CompileCycles;
      C.IsExplorationRecompile = T.IsExplorationRecompile;
      C.Installed = Cache.install(T.MethodIndex, std::move(Body.Native),
                                  T.Ticket);
      uint64_t DurUs = telemetryNowUs() - StartUs;
      Tel.CompileUs->record(DurUs);
      Tel.Compiled->add();
      (C.Installed ? Tel.Installed : Tel.Stale)->add();
      if (TraceEmitter::global().enabled()) {
        TraceEvent E;
        E.Stage = "compile";
        E.StartUs = StartUs;
        E.DurUs = DurUs;
        E.Method = T.MethodIndex;
        E.Level = (int)T.Level;
        E.Worker = (int)WorkerId;
        E.Cycles = Body.CompileCycles;
        E.Detail = C.Installed ? "installed" : "stale";
        E.Ok = C.Installed;
        TraceEmitter::global().record(E);
      }
      {
        std::lock_guard<std::mutex> Lock(CompletionMu);
        Completions.push_back(C);
        CompletionsReady.store(true, std::memory_order_release);
      }
      // Publish the completion before declaring the task done, so a
      // drain() that observes quiescence also observes every completion.
      Queue.noteDone(T.MethodIndex);
    }
    Tel.WorkerBusyUs->add(telemetryNowUs() - BatchStartUs);
  }
}
