//===- runtime/VirtualMachine.cpp -----------------------------------------===//

#include "runtime/VirtualMachine.h"

#include "il/ILGenerator.h"
#include "il/LoopInfo.h"
#include "runtime/ExecInternal.h"
#include "support/Telemetry.h"

using namespace jitml;

JitEventListener::~JitEventListener() = default;

VirtualMachine::VirtualMachine(const Program &P, const Config &C)
    : Prog(P), Cfg(C), Clock(C.Clock), Control(C.Control) {
  Globals.resize(P.numGlobals());
  Code.reset(P.numMethods());
  LoopClassCache.assign(P.numMethods(), -1);
  if (Cfg.Async.Enabled && Cfg.EnableJit) {
    AsyncCompilePipeline::Config PC;
    PC.Workers = Cfg.Async.Workers;
    PC.QueueCapacity = Cfg.Async.QueueCapacity;
    PC.MaxPredictBatch = Cfg.Async.MaxPredictBatch;
    AsyncPipe = std::make_unique<AsyncCompilePipeline>(Prog, Cfg.Cost, Code,
                                                       PC);
  }
}

VirtualMachine::~VirtualMachine() {
  if (AsyncPipe) {
    // Discard queued work, let in-flight compiles finish, join workers.
    AsyncPipe->shutdown(false);
    flushAsyncCompletions();
  }
}

void VirtualMachine::setModifierHook(ModifierHook H) {
  Hook = std::move(H);
  if (AsyncPipe)
    AsyncPipe->setModifierHook(Hook);
}

void VirtualMachine::setBatchModifierHook(
    AsyncCompilePipeline::BatchModifierFn H) {
  if (AsyncPipe)
    AsyncPipe->setBatchModifierHook(std::move(H));
}

const NativeMethod *VirtualMachine::nativeOf(uint32_t MethodIndex) const {
  return Code.lookup(MethodIndex);
}

LoopClass VirtualMachine::loopClassOf(uint32_t MethodIndex) {
  int8_t &Cached = LoopClassCache[MethodIndex];
  if (Cached < 0) {
    std::unique_ptr<MethodIL> IL = generateIL(Prog, MethodIndex);
    Cached = (int8_t)LoopInfo(*IL).classify();
  }
  return (LoopClass)Cached;
}

ExecResult VirtualMachine::raise(RtExceptionKind Kind) {
  ++Stat.ExceptionsRaised;
  return ExecResult::exception(TheHeap.allocException(Kind));
}

uint64_t VirtualMachine::nextInstallTicket() {
  return AsyncPipe ? AsyncPipe->takeTicket() : ++SyncTicket;
}

void VirtualMachine::compileMethod(uint32_t MethodIndex, OptLevel Level,
                                   bool IsExploration) {
  if (!Hook) {
    compileWithPlan(MethodIndex, planForLevel(Level), PlanModifier(),
                    IsExploration);
    return;
  }
  // "The Strategy Control extension computes the features for the method
  // being compiled" just prior to optimization (Figure 5 step d).
  FeatureVector Features = extractMethodFeatures(Prog, MethodIndex);
  PlanModifier Modifier;
  try {
    Modifier = Hook(MethodIndex, Level, Features);
  } catch (...) {
    // A misbehaving strategy hook must never take the VM down: compile
    // with the unmodified hand-tuned plan instead.
    ++Stat.HookFailures;
    Modifier = PlanModifier();
  }
  compileWithPlan(MethodIndex, planForLevel(Level), Modifier, IsExploration);
}

void VirtualMachine::compileWithPlan(uint32_t MethodIndex,
                                     const CompilationPlan &Plan,
                                     const PlanModifier &Modifier,
                                     bool IsExploration) {
  OptLevel Level = Plan.Level;
  uint64_t StartUs = telemetryNowUs();
  CompiledBody Body =
      compileMethodBody(Prog, MethodIndex, Plan, Modifier, Cfg.Cost);
  double TotalCompile = Body.CompileCycles;
  FeatureVector Features = Body.Features;

  bool Installed =
      Code.install(MethodIndex, std::move(Body.Native), nextInstallTicket());
  // Name lookups once per process, not per compile.
  static TelemetryCounter &SyncCompiles =
      MetricRegistry::global().counter("vm.sync_compiles");
  static TelemetryHistogram &SyncCompileUs =
      MetricRegistry::global().histogram("vm.sync_compile");
  SyncCompiles.add();
  SyncCompileUs.record(telemetryNowUs() - StartUs);
  if (TraceEmitter::global().enabled()) {
    TraceEvent E;
    E.Stage = "compile";
    E.StartUs = StartUs;
    E.DurUs = telemetryNowUs() - StartUs;
    E.Method = MethodIndex;
    E.Level = (int)Level;
    E.Cycles = TotalCompile;
    E.Detail = Installed ? "installed" : "stale";
    E.Ok = Installed;
    TraceEmitter::global().record(E);
  }
  if (Installed)
    Control.noteCompiled(MethodIndex, Level);

  // Synchronous compilation: the compiler competes with the application
  // for the same core, so compile cycles advance the clock too.
  Clock.advance(TotalCompile);
  Stat.CompileCycles += TotalCompile;
  ++Stat.Compilations;
  if (Modifier.raw() == PlanModifier().raw())
    ++Stat.NullModifierCompilations;
  if (IsExploration)
    ++Stat.ExplorationRecompiles;

  if (Listener) {
    CompileEvent Event;
    Event.MethodIndex = MethodIndex;
    Event.Level = Level;
    Event.Modifier = Modifier;
    Event.Features = Features;
    Event.CompileCycles = TotalCompile;
    Event.IsExplorationRecompile = IsExploration;
    Listener->onCompile(Event);
  }
}

void VirtualMachine::flushAsyncCompletions() {
  if (!AsyncPipe)
    return;
  for (const CompileCompletion &C : AsyncPipe->takeCompletions()) {
    if (C.Installed) {
      Control.noteCompiled(C.MethodIndex, C.Level);
      ++Stat.AsyncInstalls;
    } else {
      ++Stat.AsyncStaleCompiles;
    }
    // Worker compile cycles never advance the interpreter clock — the
    // background compiler runs on its own core.
    Stat.AsyncCompileCycles += C.CompileCycles;
    ++Stat.Compilations;
    if (C.HookFailed)
      ++Stat.HookFailures;
    if (C.Modifier.raw() == PlanModifier().raw())
      ++Stat.NullModifierCompilations;
    if (C.IsExplorationRecompile)
      ++Stat.ExplorationRecompiles;
    if (Listener) {
      CompileEvent Event;
      Event.MethodIndex = C.MethodIndex;
      Event.Level = C.Level;
      Event.Modifier = C.Modifier;
      Event.Features = C.Features;
      Event.CompileCycles = C.CompileCycles;
      Event.IsExplorationRecompile = C.IsExplorationRecompile;
      Listener->onCompile(Event);
    }
  }
}

void VirtualMachine::serviceCompileRequest(const CompileRequest &Req) {
  if (!AsyncPipe) {
    compileMethod(Req.MethodIndex, Req.Level, Req.IsExplorationRecompile);
    return;
  }
  switch (AsyncPipe->request(Req.MethodIndex, Req.Level,
                             Req.IsExplorationRecompile,
                             Control.invocationsOf(Req.MethodIndex))) {
  case CompilationQueue::EnqueueResult::Enqueued:
    ++Stat.AsyncCompileRequests;
    break;
  case CompilationQueue::EnqueueResult::Coalesced:
    ++Stat.AsyncCoalescedRequests;
    break;
  case CompilationQueue::EnqueueResult::Overflow:
    // Backpressure: keep interpreting; the trigger will re-fire.
    ++Stat.AsyncQueueOverflows;
    break;
  case CompilationQueue::EnqueueResult::Closed:
    break;
  }
}

void VirtualMachine::drainCompilations() {
  if (!AsyncPipe)
    return;
  AsyncPipe->drain();
  flushAsyncCompletions();
  // Quiescent (no invocation in progress by contract): old bodies are
  // safe to free now.
  Code.reclaimRetired();
}

CompilationQueue::Counters VirtualMachine::asyncQueueCounters() const {
  return AsyncPipe ? AsyncPipe->queueCounters()
                   : CompilationQueue::Counters();
}

ExecResult VirtualMachine::invoke(uint32_t MethodIndex,
                                  std::vector<Value> Args, unsigned Depth) {
  if (Depth > Cfg.MaxCallDepth)
    return raise(RtExceptionKind::StackOverflow);
  // Apply finished background compilations before dispatching: a relaxed
  // flag check keeps the cost negligible when nothing completed.
  if (AsyncPipe && AsyncPipe->hasCompletions())
    flushAsyncCompletions();
  const MethodInfo &M = Prog.methodAt(MethodIndex);
  assert(Args.size() == M.numArgs() &&
         "invoke with wrong argument count");
  ++Stat.Invocations;

  const NativeMethod *Native = Code.lookup(MethodIndex);
  // Call overhead: leaf-optimized callees skip most of the frame setup.
  charge(Native && Native->Leaf ? Cfg.Cost.LeafCallOverhead
                                : Cfg.Cost.CallOverhead);
  // Synchronized methods lock the receiver (or the class for statics).
  if (M.hasFlag(MF_Synchronized))
    charge(Cfg.Cost.MonitorCost);

  bool Instrument = Cfg.InstrumentMethods && Listener && Native;
  if (Instrument)
    Listener->onMethodEnter(MethodIndex, Clock.readTimestamp());

  double CyclesBefore = Clock.cycles();
  ExecResult Result;
  if (Native) {
    Result = executeNative(*this, *Native, std::move(Args), Depth);
  } else {
    ++Stat.InterpretedInvocations;
    Result = interpretMethod(*this, MethodIndex, std::move(Args), Depth);
  }
  double Spent = Clock.cycles() - CyclesBefore;

  if (M.hasFlag(MF_Synchronized))
    charge(Cfg.Cost.MonitorCost);
  if (Instrument)
    Listener->onMethodExit(MethodIndex, Clock.readTimestamp(),
                           Result.Exceptional);

  // Compilation control: invocation counters + time sampling.
  if (Cfg.EnableJit) {
    std::optional<CompileRequest> Req =
        Control.onInvocationEnd(MethodIndex, Spent, loopClassOf(MethodIndex));
    if (Req) {
      bool Allowed = true;
      if (Req->IsExplorationRecompile && Gate)
        Allowed = Gate(Req->MethodIndex);
      if (Allowed)
        serviceCompileRequest(*Req);
      else
        Control.freezeExploration(Req->MethodIndex);
    }
  }
  return Result;
}

ExecResult VirtualMachine::run(const std::vector<Value> &Args) {
  assert(Prog.entryMethod() >= 0 && "program has no entry method");
  return invoke((uint32_t)Prog.entryMethod(), Args, 0);
}
