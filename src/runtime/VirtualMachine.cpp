//===- runtime/VirtualMachine.cpp -----------------------------------------===//

#include "runtime/VirtualMachine.h"

#include "il/ILGenerator.h"
#include "il/LoopInfo.h"
#include "features/FeatureExtractor.h"
#include "runtime/ExecInternal.h"

using namespace jitml;

JitEventListener::~JitEventListener() = default;

VirtualMachine::VirtualMachine(const Program &P, const Config &C)
    : Prog(P), Cfg(C), Clock(C.Clock), Control(C.Control) {
  Globals.resize(P.numGlobals());
  CodePool.resize(P.numMethods());
  LoopClassCache.assign(P.numMethods(), -1);
}

VirtualMachine::~VirtualMachine() = default;

const NativeMethod *VirtualMachine::nativeOf(uint32_t MethodIndex) const {
  assert(MethodIndex < CodePool.size() && "method index out of range");
  return CodePool[MethodIndex].get();
}

LoopClass VirtualMachine::loopClassOf(uint32_t MethodIndex) {
  int8_t &Cached = LoopClassCache[MethodIndex];
  if (Cached < 0) {
    std::unique_ptr<MethodIL> IL = generateIL(Prog, MethodIndex);
    Cached = (int8_t)LoopInfo(*IL).classify();
  }
  return (LoopClass)Cached;
}

ExecResult VirtualMachine::raise(RtExceptionKind Kind) {
  ++Stat.ExceptionsRaised;
  return ExecResult::exception(TheHeap.allocException(Kind));
}

void VirtualMachine::compileMethod(uint32_t MethodIndex, OptLevel Level,
                                   bool IsExploration) {
  if (!Hook) {
    compileWithPlan(MethodIndex, planForLevel(Level), PlanModifier(),
                    IsExploration);
    return;
  }
  // "The Strategy Control extension computes the features for the method
  // being compiled" just prior to optimization (Figure 5 step d).
  std::unique_ptr<MethodIL> IL = generateIL(Prog, MethodIndex);
  FeatureVector Features = extractFeatures(*IL);
  PlanModifier Modifier;
  try {
    Modifier = Hook(MethodIndex, Level, Features);
  } catch (...) {
    // A misbehaving strategy hook must never take the VM down: compile
    // with the unmodified hand-tuned plan instead.
    ++Stat.HookFailures;
    Modifier = PlanModifier();
  }
  compileWithPlan(MethodIndex, planForLevel(Level), Modifier, IsExploration);
}

void VirtualMachine::compileWithPlan(uint32_t MethodIndex,
                                     const CompilationPlan &Plan,
                                     const PlanModifier &Modifier,
                                     bool IsExploration) {
  OptLevel Level = Plan.Level;
  std::unique_ptr<MethodIL> IL = generateIL(Prog, MethodIndex);
  LoopInfo::annotateFrequencies(*IL);
  FeatureVector Features = extractFeatures(*IL);

  OptimizeResult Opt = optimize(*IL, Plan, Modifier.enabledMask());
  NativeMethod Native =
      generateCode(*IL, Opt.CodegenOptions, Level, Cfg.Cost);
  double TotalCompile = Opt.CompileCycles + Native.CompileCycles;
  Native.CompileCycles = TotalCompile;

  CodePool[MethodIndex] =
      std::make_unique<NativeMethod>(std::move(Native));
  Control.noteCompiled(MethodIndex, Level);

  // Synchronous compilation: the compiler competes with the application
  // for the same core, so compile cycles advance the clock too.
  Clock.advance(TotalCompile);
  Stat.CompileCycles += TotalCompile;
  ++Stat.Compilations;
  if (Modifier.raw() == PlanModifier().raw())
    ++Stat.NullModifierCompilations;
  if (IsExploration)
    ++Stat.ExplorationRecompiles;

  if (Listener) {
    CompileEvent Event;
    Event.MethodIndex = MethodIndex;
    Event.Level = Level;
    Event.Modifier = Modifier;
    Event.Features = Features;
    Event.CompileCycles = TotalCompile;
    Event.IsExplorationRecompile = IsExploration;
    Listener->onCompile(Event);
  }
}

ExecResult VirtualMachine::invoke(uint32_t MethodIndex,
                                  std::vector<Value> Args, unsigned Depth) {
  if (Depth > Cfg.MaxCallDepth)
    return raise(RtExceptionKind::StackOverflow);
  const MethodInfo &M = Prog.methodAt(MethodIndex);
  assert(Args.size() == M.numArgs() &&
         "invoke with wrong argument count");
  ++Stat.Invocations;

  const NativeMethod *Native = CodePool[MethodIndex].get();
  // Call overhead: leaf-optimized callees skip most of the frame setup.
  charge(Native && Native->Leaf ? Cfg.Cost.LeafCallOverhead
                                : Cfg.Cost.CallOverhead);
  // Synchronized methods lock the receiver (or the class for statics).
  if (M.hasFlag(MF_Synchronized))
    charge(Cfg.Cost.MonitorCost);

  bool Instrument = Cfg.InstrumentMethods && Listener && Native;
  if (Instrument)
    Listener->onMethodEnter(MethodIndex, Clock.readTimestamp());

  double CyclesBefore = Clock.cycles();
  ExecResult Result;
  if (Native) {
    Result = executeNative(*this, *Native, std::move(Args), Depth);
  } else {
    ++Stat.InterpretedInvocations;
    Result = interpretMethod(*this, MethodIndex, std::move(Args), Depth);
  }
  double Spent = Clock.cycles() - CyclesBefore;

  if (M.hasFlag(MF_Synchronized))
    charge(Cfg.Cost.MonitorCost);
  if (Instrument)
    Listener->onMethodExit(MethodIndex, Clock.readTimestamp(),
                           Result.Exceptional);

  // Compilation control: invocation counters + time sampling.
  if (Cfg.EnableJit) {
    std::optional<CompileRequest> Req =
        Control.onInvocationEnd(MethodIndex, Spent, loopClassOf(MethodIndex));
    if (Req) {
      bool Allowed = true;
      if (Req->IsExplorationRecompile && Gate)
        Allowed = Gate(Req->MethodIndex);
      if (Allowed)
        compileMethod(Req->MethodIndex, Req->Level,
                      Req->IsExplorationRecompile);
      else
        Control.freezeExploration(Req->MethodIndex);
    }
  }
  return Result;
}

ExecResult VirtualMachine::run(const std::vector<Value> &Args) {
  assert(Prog.entryMethod() >= 0 && "program has no entry method");
  return invoke((uint32_t)Prog.entryMethod(), Args, 0);
}
