//===- runtime/RuntimeOps.h - Shared value semantics ------------*- C++ -*-===//
///
/// \file
/// Value semantics shared by the interpreter and the native executor:
/// integer normalization per type, conversions, arithmetic and comparison.
/// Both engines must agree bit-for-bit — the tests execute every workload
/// under both and diff the results.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_RUNTIME_RUNTIMEOPS_H
#define JITML_RUNTIME_RUNTIMEOPS_H

#include "bytecode/Opcode.h"
#include "runtime/Heap.h"

#include <cmath>

namespace jitml {

/// Wraps an integer to the value range of \p T (char is zero-extended).
inline int64_t normalizeRtInt(DataType T, int64_t V) {
  switch (T) {
  case DataType::Int8:
    return (int64_t)(int8_t)V;
  case DataType::Char:
    return (int64_t)(uint16_t)V;
  case DataType::Int16:
    return (int64_t)(int16_t)V;
  case DataType::Int32:
    return (int64_t)(int32_t)V;
  default:
    return V;
  }
}

/// Converts \p V from \p From to \p To. Reference conversions are
/// identity; decimal types are carried in the integer lane; long double is
/// carried in the double lane.
inline Value convertValue(DataType From, DataType To, Value V) {
  if (isReferenceType(From) || isReferenceType(To))
    return V;
  double AsF = isFloatType(From) ? V.F : (double)V.I;
  int64_t AsI;
  if (isFloatType(From)) {
    // Java semantics: NaN converts to 0, saturation at the extremes.
    if (std::isnan(V.F))
      AsI = 0;
    else if (V.F >= 9.2233720368547758e18)
      AsI = INT64_MAX;
    else if (V.F <= -9.2233720368547758e18)
      AsI = INT64_MIN;
    else
      AsI = (int64_t)V.F;
  } else {
    AsI = V.I;
  }
  Value Out;
  if (isFloatType(To))
    Out.F = To == DataType::Float ? (double)(float)AsF : AsF;
  else
    Out.I = normalizeRtInt(To, AsI);
  return Out;
}

/// Integer/float binary arithmetic; \p DivByZero is set when an integral
/// division by zero was attempted (the caller raises the exception).
inline Value evalArith(BcOp Op, DataType T, Value A, Value B,
                       bool &DivByZero) {
  DivByZero = false;
  Value Out;
  if (isFloatType(T)) {
    switch (Op) {
    case BcOp::Add:
      Out.F = A.F + B.F;
      break;
    case BcOp::Sub:
      Out.F = A.F - B.F;
      break;
    case BcOp::Mul:
      Out.F = A.F * B.F;
      break;
    case BcOp::Div:
      Out.F = A.F / B.F;
      break;
    case BcOp::Rem:
      Out.F = std::fmod(A.F, B.F);
      break;
    default:
      assert(false && "bad float op");
    }
    if (T == DataType::Float)
      Out.F = (double)(float)Out.F;
    return Out;
  }
  int64_t X = A.I, Y = B.I, R = 0;
  switch (Op) {
  case BcOp::Add:
    R = (int64_t)((uint64_t)X + (uint64_t)Y);
    break;
  case BcOp::Sub:
    R = (int64_t)((uint64_t)X - (uint64_t)Y);
    break;
  case BcOp::Mul:
    R = (int64_t)((uint64_t)X * (uint64_t)Y);
    break;
  case BcOp::Div:
    if (Y == 0) {
      DivByZero = true;
      return Out;
    }
    R = (X == INT64_MIN && Y == -1) ? X : X / Y;
    break;
  case BcOp::Rem:
    if (Y == 0) {
      DivByZero = true;
      return Out;
    }
    R = (X == INT64_MIN && Y == -1) ? 0 : X % Y;
    break;
  case BcOp::Shl:
    R = (int64_t)((uint64_t)X << (Y & 63));
    break;
  case BcOp::Shr:
    R = X >> (Y & 63);
    break;
  case BcOp::Or:
    R = X | Y;
    break;
  case BcOp::And:
    R = X & Y;
    break;
  case BcOp::Xor:
    R = X ^ Y;
    break;
  default:
    assert(false && "bad int op");
  }
  Out.I = normalizeRtInt(T, R);
  return Out;
}

/// Three-way comparison under type \p T.
inline int64_t compare3(DataType T, Value A, Value B) {
  if (isFloatType(T)) {
    if (A.F < B.F)
      return -1;
    if (A.F > B.F)
      return 1;
    return 0; // NaN compares as equal-ish; fine for the simulation
  }
  if (isReferenceType(T)) {
    if (A.R < B.R)
      return -1;
    if (A.R > B.R)
      return 1;
    return 0;
  }
  if (A.I < B.I)
    return -1;
  if (A.I > B.I)
    return 1;
  return 0;
}

inline bool testCond(BcCond C, int64_t Cmp3) {
  switch (C) {
  case BcCond::Eq:
    return Cmp3 == 0;
  case BcCond::Ne:
    return Cmp3 != 0;
  case BcCond::Lt:
    return Cmp3 < 0;
  case BcCond::Ge:
    return Cmp3 >= 0;
  case BcCond::Gt:
    return Cmp3 > 0;
  case BcCond::Le:
    return Cmp3 <= 0;
  }
  return false;
}

} // namespace jitml

#endif // JITML_RUNTIME_RUNTIMEOPS_H
