//===- runtime/SimClock.cpp -----------------------------------------------===//

#include "runtime/SimClock.h"

#include <cmath>

using namespace jitml;

SimClock::SimClock(const Config &C) : Cfg(C), R(C.Seed) {
  CoreRate.resize(Cfg.NumCores);
  CoreOffset.resize(Cfg.NumCores);
  for (unsigned I = 0; I < Cfg.NumCores; ++I) {
    // Each core's TSC ticks at a slightly different rate and starts from a
    // different base — the "TSC drift" condition of section 4.2.
    CoreRate[I] = 1.0 + Cfg.SkewMagnitude * (R.nextDouble() * 2.0 - 1.0);
    CoreOffset[I] = (double)R.nextBelow(1u << 20);
  }
  Core = (uint32_t)R.nextBelow(Cfg.NumCores);
  NextMigration = Cfg.MigrationPeriod * (0.5 + R.nextDouble());
}

void SimClock::advance(double C) {
  Cycles += C;
  maybeMigrate();
}

void SimClock::maybeMigrate() {
  while (Cycles >= NextMigration) {
    uint32_t NewCore = (uint32_t)R.nextBelow(Cfg.NumCores);
    if (NewCore != Core)
      ++Migrations;
    Core = NewCore;
    NextMigration += Cfg.MigrationPeriod * (0.5 + R.nextDouble());
  }
}

TscSample SimClock::readTimestamp() {
  TscSample S;
  S.CoreId = Core;
  S.Tsc = (uint64_t)std::llround(Cycles * CoreRate[Core] + CoreOffset[Core]);
  return S;
}
