//===- runtime/SimClock.h - Simulated multi-core time-stamp counter -*-C++*-=//
///
/// \file
/// Deterministic substitute for the x86 TSC used by the paper's profiling
/// (section 4.2): a cycle counter advanced by the executor plus a
/// multi-core model with per-core frequency skew and periodic thread
/// migration (the Linux load balancer moves threads "roughly once every
/// 200 ms; in practice ... once every few seconds"). readTimestamp() is the
/// rdtscp analogue: it returns both the core-local TSC value and the core
/// id, so the instrumentation can detect cross-core samples and discard
/// them exactly as the paper's collection infrastructure does.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_RUNTIME_SIMCLOCK_H
#define JITML_RUNTIME_SIMCLOCK_H

#include "support/Rng.h"

#include <cstdint>
#include <vector>

namespace jitml {

/// A TSC sample: counter value plus the core it was read on (rdtscp).
struct TscSample {
  uint64_t Tsc = 0;
  uint32_t CoreId = 0;
};

class SimClock {
public:
  struct Config {
    unsigned NumCores = 8;
    /// Relative per-core frequency skew magnitude (TSC drift source).
    double SkewMagnitude = 2e-4;
    /// Mean cycles between thread migrations.
    double MigrationPeriod = 2e7;
    uint64_t Seed = 42;
  };

  SimClock() : SimClock(Config{}) {}
  explicit SimClock(const Config &C);

  /// Advances simulated time by \p Cycles (fractional cycles accumulate).
  void advance(double Cycles);

  /// Total cycles elapsed since construction.
  double cycles() const { return Cycles; }

  /// rdtscp: the current core's TSC and its id. Migration between two
  /// reads shows up as a core-id change (and a drifted counter).
  TscSample readTimestamp();

  uint32_t currentCore() const { return Core; }
  uint64_t migrations() const { return Migrations; }

private:
  void maybeMigrate();

  Config Cfg;
  Rng R;
  double Cycles = 0.0;
  uint32_t Core = 0;
  double NextMigration = 0.0;
  uint64_t Migrations = 0;
  std::vector<double> CoreRate;   ///< cycles -> core TSC rate
  std::vector<double> CoreOffset; ///< per-core TSC base offset
};

} // namespace jitml

#endif // JITML_RUNTIME_SIMCLOCK_H
