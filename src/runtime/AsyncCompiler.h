//===- runtime/AsyncCompiler.h - Background compilation pipeline -*-C++-*-===//
///
/// \file
/// Testarossa compiles on background compilation threads while the
/// application keeps interpreting; this is that subsystem for the
/// simulated VM. A pool of worker threads drains the CompilationQueue,
/// runs the full compilation pipeline off the interpreter thread —
/// feature extraction, model prediction (optionally batched: one bridge
/// round trip covers a whole dequeued backlog), Optimizer, CodeGenerator —
/// and publishes finished bodies through CodeCache's atomic install.
///
/// Threading contract: workers touch only immutable inputs (the Program,
/// the plans, the cost model) plus the explicitly thread-safe pieces
/// (CompilationQueue, CodeCache, the hooks the caller installed — a hook
/// shared by several workers must itself be thread-safe, which
/// ResilientModelClient and LearnedStrategyProvider are). Everything else
/// — CompilationControl bookkeeping, VM statistics, JitEventListener
/// callbacks — stays on the interpreter thread: workers append a
/// CompileCompletion record to a buffer, and the VM flushes that buffer
/// from its own dispatch loop (a relaxed flag check per invocation, a
/// lock only when completions are actually pending).
///
/// Failure semantics mirror the sync path: a hook that throws (or a model
/// call that falls back) compiles with the unmodified hand-tuned plan and
/// is counted, never propagated.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_RUNTIME_ASYNCCOMPILER_H
#define JITML_RUNTIME_ASYNCCOMPILER_H

#include "codegen/CostModel.h"
#include "features/FeatureVector.h"
#include "modifiers/Modifier.h"
#include "runtime/CodeCache.h"
#include "runtime/CompilationQueue.h"
#include "support/Telemetry.h"

#include <functional>
#include <thread>

namespace jitml {

class Program;

/// Everything a compilation produced, before installation bookkeeping.
struct CompiledBody {
  std::unique_ptr<NativeMethod> Native;
  FeatureVector Features; ///< extracted just prior to optimization
  double CompileCycles = 0.0;
};

/// The pure compile pipeline for one method: IL generation, frequency
/// annotation, feature extraction, plan-driven optimization, code
/// generation. Reads only immutable state, so any thread may call it.
CompiledBody compileMethodBody(const Program &P, uint32_t MethodIndex,
                               const CompilationPlan &Plan,
                               const PlanModifier &Modifier,
                               const CostModel &Cost);

/// Features of a method as the strategy hook sees them (Figure 5 step d:
/// computed just prior to optimization). Thread-safe like compileMethodBody.
FeatureVector extractMethodFeatures(const Program &P, uint32_t MethodIndex);

/// A finished background compilation, consumed by the interpreter thread.
struct CompileCompletion {
  uint32_t MethodIndex = 0;
  OptLevel Level = OptLevel::Cold;
  PlanModifier Modifier;
  FeatureVector Features;
  double CompileCycles = 0.0;
  bool IsExplorationRecompile = false;
  bool Installed = false;  ///< false: lost the install race to a newer ticket
  bool HookFailed = false; ///< modifier hook threw; null modifier was used
};

class AsyncCompilePipeline {
public:
  struct Config {
    unsigned Workers = 2;
    size_t QueueCapacity = 64;
    /// Max requests one worker dequeues (and predicts) per round trip.
    size_t MaxPredictBatch = 8;
  };

  using ModifierFn = std::function<PlanModifier(
      uint32_t MethodIndex, OptLevel Level, const FeatureVector &Features)>;

  /// One entry of a batched prediction request.
  struct BatchPredictItem {
    uint32_t MethodIndex = 0;
    OptLevel Level = OptLevel::Cold;
    FeatureVector Features;
  };
  /// Must return exactly one modifier per item (any other size is treated
  /// as a hook failure for the whole batch).
  using BatchModifierFn = std::function<std::vector<PlanModifier>(
      const std::vector<BatchPredictItem> &Items)>;

  AsyncCompilePipeline(const Program &P, const CostModel &Cost,
                       CodeCache &Cache, Config C);
  ~AsyncCompilePipeline(); ///< shutdown(false)

  /// Set before execution starts; hooks shared by several workers must be
  /// thread-safe.
  void setModifierHook(ModifierFn H);
  void setBatchModifierHook(BatchModifierFn H);

  /// Submits a compile request from the interpreter thread. Never blocks.
  CompilationQueue::EnqueueResult request(uint32_t MethodIndex,
                                          OptLevel Level, bool IsExploration,
                                          uint64_t Priority);

  /// Cheap check the dispatch loop can afford on every invocation.
  bool hasCompletions() const {
    return CompletionsReady.load(std::memory_order_acquire);
  }
  /// Removes and returns all buffered completions.
  std::vector<CompileCompletion> takeCompletions();

  /// Blocks until the queue is empty and no compilation is in flight.
  /// Completions are then all visible to takeCompletions().
  void drain();

  /// Stops the workers. With \p FinishPending, queued work is compiled
  /// first; otherwise it is discarded and only in-flight work finishes.
  /// Idempotent; also called by the destructor.
  void shutdown(bool FinishPending);

  /// Ticket source shared with synchronous installs, so direct compiles
  /// order correctly against queued ones (see CodeCache).
  uint64_t takeTicket() { return Queue.takeTicket(); }

  CompilationQueue::Counters queueCounters() const {
    return Queue.counters();
  }
  /// Batched prediction round trips actually performed by workers.
  uint64_t batchPredictCalls() const {
    return BatchPredicts.load(std::memory_order_relaxed);
  }

private:
  void workerLoop(unsigned WorkerId);
  std::vector<PlanModifier>
  modifiersForBatch(const std::vector<AsyncCompileTask> &Tasks,
                    std::vector<CompileCompletion> &Partial);

  const Program &Prog;
  const CostModel &Cost;
  CodeCache &Cache;
  const Config Cfg;
  CompilationQueue Queue;

  mutable std::mutex HookMu;
  ModifierFn Hook;
  BatchModifierFn BatchHook;

  std::mutex CompletionMu;
  std::vector<CompileCompletion> Completions;
  std::atomic<bool> CompletionsReady{false};

  /// Process-wide metrics, resolved once at construction.
  struct TelemetryRefs {
    TelemetryCounter *Compiled, *Installed, *Stale, *BatchPredicts,
        *WorkerBusyUs;
    TelemetryHistogram *CompileUs; ///< per-method worker compile wall us
  };
  TelemetryRefs Tel;

  std::atomic<uint64_t> BatchPredicts{0};
  std::vector<std::thread> Workers;
  bool ShutDown = false; ///< guarded by HookMu (rarely touched)
};

} // namespace jitml

#endif // JITML_RUNTIME_ASYNCCOMPILER_H
