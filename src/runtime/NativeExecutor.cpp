//===- runtime/NativeExecutor.cpp - Simulated native execution ------------===//
//
// Interprets compiled NativeMethod bodies under the cycle cost model:
// per-instruction issue costs, dependency stalls, taken-branch penalties
// relative to the emitted layout, per-block spill penalties, and the
// method-wide icache factor. Semantics match the bytecode interpreter
// exactly; only the cycle accounting differs.
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecInternal.h"

#include "runtime/RuntimeOps.h"

using namespace jitml;

namespace {

/// Maps NOp arithmetic back to the shared BcOp evaluator.
BcOp arithBcOp(NOp Op) {
  switch (Op) {
  case NOp::Add:
    return BcOp::Add;
  case NOp::Sub:
    return BcOp::Sub;
  case NOp::Mul:
    return BcOp::Mul;
  case NOp::Div:
    return BcOp::Div;
  case NOp::Rem:
    return BcOp::Rem;
  case NOp::Shl:
    return BcOp::Shl;
  case NOp::Shr:
    return BcOp::Shr;
  case NOp::Or:
    return BcOp::Or;
  case NOp::And:
    return BcOp::And;
  case NOp::Xor:
    return BcOp::Xor;
  default:
    assert(false && "not an arithmetic native op");
    return BcOp::Add;
  }
}

} // namespace

ExecResult jitml::executeNative(VirtualMachine &VM, const NativeMethod &Code,
                                std::vector<Value> Args, unsigned Depth) {
  const Program &P = VM.program();
  const CostModel &CM = VM.costModel();
  Heap &H = VM.heap();
  double ICache = Code.ICacheFactor;

  std::vector<Value> Locals(Code.NumLocals);
  for (size_t I = 0; I < Args.size(); ++I)
    Locals[I] = Args[I];
  std::vector<Value> Regs(std::max<uint32_t>(Code.NumVRegs, 1));
  Value ExcValue; ///< the in-flight exception for LdExc

  // Position of each block in the emitted layout (for taken-branch cost).
  std::vector<uint32_t> LayoutPos(Code.Blocks.size(), UINT32_MAX);
  for (uint32_t I = 0; I < Code.Layout.size(); ++I)
    LayoutPos[Code.Layout[I]] = I;

  int32_t Block = (int32_t)Code.Entry;
  uint16_t PrevDst = NoReg;

  // Transfers control to an exception handler of the current block, or
  // returns false when the exception escapes the method.
  auto DispatchExc = [&](uint32_t ExcRef) -> bool {
    for (const auto &[Handler, ClassIdx] : Code.Blocks[Block].Handlers) {
      if (ClassIdx >= 0) {
        int32_t Cls = H.classOf(ExcRef);
        if (Cls < 0 || !P.isSubclassOf(Cls, ClassIdx))
          continue;
      }
      ExcValue = Value::ofR(ExcRef);
      Block = Handler;
      PrevDst = NoReg;
      return true;
    }
    return false;
  };

  while (true) {
    const NativeBlock &B = Code.Blocks[(uint32_t)Block];
    VM.charge(B.SpillPenalty * ICache);
    bool Transferred = false; ///< exception dispatch changed Block

    for (size_t II = 0; II < B.Insts.size() && !Transferred; ++II) {
      const NativeInst &I = B.Insts[II];
      double Cost = CM.instCost(I);
      // Pipeline stall: the previous instruction's result is consumed
      // immediately.
      if (PrevDst != NoReg &&
          (I.A == PrevDst || I.B == PrevDst ||
           std::find(I.Args.begin(), I.Args.end(), PrevDst) !=
               I.Args.end()))
        Cost += CM.StallCost;
      VM.charge(Cost * ICache);
      uint16_t ThisDst = I.Dst;

      auto Trap = [&](RtExceptionKind Kind) {
        uint32_t Exc = H.allocException(Kind);
        VM.noteException();
        if (DispatchExc(Exc)) {
          Transferred = true;
          return ExecResult::ok(Value());
        }
        VM.charge(CM.UnwindPerFrame * ICache);
        return ExecResult::exception(Exc);
      };

      switch (I.Op) {
      case NOp::Nop:
        break;
      case NOp::ConstI:
        Regs[I.Dst] = Value::ofI(I.Imm);
        break;
      case NOp::ConstF:
        Regs[I.Dst] = Value::ofF(I.FImm);
        break;
      case NOp::Move:
        Regs[I.Dst] = Regs[I.A];
        break;
      case NOp::LdLoc:
        Regs[I.Dst] = Locals[(uint32_t)I.Aux];
        break;
      case NOp::StLoc:
        Locals[(uint32_t)I.Aux] = Regs[I.A];
        break;
      case NOp::LdGlob:
        Regs[I.Dst] = VM.getGlobal((uint32_t)I.Aux);
        break;
      case NOp::StGlob:
        VM.setGlobal((uint32_t)I.Aux, Regs[I.A]);
        break;
      case NOp::LdFld: {
        uint32_t Obj = Regs[I.A].R;
        if (H.isNull(Obj)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
          break;
        }
        Regs[I.Dst] = H.getSlot(Obj, (uint32_t)I.Aux);
        break;
      }
      case NOp::StFld: {
        uint32_t Obj = Regs[I.A].R;
        if (H.isNull(Obj)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
          break;
        }
        H.setSlot(Obj, (uint32_t)I.Aux, Regs[I.B]);
        break;
      }
      case NOp::LdElem: {
        uint32_t Arr = Regs[I.A].R;
        int64_t Idx = Regs[I.B].I;
        if (H.isNull(Arr)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
          break;
        }
        if (Idx < 0 || (uint64_t)Idx >= H.arrayLength(Arr)) {
          ExecResult R = Trap(RtExceptionKind::ArrayIndexOutOfBounds);
          if (!Transferred)
            return R;
          break;
        }
        Regs[I.Dst] = H.getSlot(Arr, (uint32_t)Idx);
        break;
      }
      case NOp::StElem: {
        uint32_t Arr = Regs[I.A].R;
        int64_t Idx = Regs[I.B].I;
        if (H.isNull(Arr)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
          break;
        }
        if (Idx < 0 || (uint64_t)Idx >= H.arrayLength(Arr)) {
          ExecResult R = Trap(RtExceptionKind::ArrayIndexOutOfBounds);
          if (!Transferred)
            return R;
          break;
        }
        H.setSlot(Arr, (uint32_t)Idx, Regs[I.Args[0]]);
        break;
      }
      case NOp::ArrLen: {
        uint32_t Arr = Regs[I.A].R;
        if (H.isNull(Arr)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
          break;
        }
        Regs[I.Dst] = Value::ofI(H.arrayLength(Arr));
        break;
      }
      case NOp::LdExc:
        Regs[I.Dst] = ExcValue;
        break;
      case NOp::Add:
      case NOp::Sub:
      case NOp::Mul:
      case NOp::Div:
      case NOp::Rem:
      case NOp::Shl:
      case NOp::Shr:
      case NOp::Or:
      case NOp::And:
      case NOp::Xor: {
        bool DivByZero = false;
        Value R =
            evalArith(arithBcOp(I.Op), I.T, Regs[I.A], Regs[I.B], DivByZero);
        if (DivByZero) {
          ExecResult Res = Trap(RtExceptionKind::ArithmeticDivByZero);
          if (!Transferred)
            return Res;
          break;
        }
        Regs[I.Dst] = R;
        break;
      }
      case NOp::Neg:
        if (isFloatType(I.T))
          Regs[I.Dst] = Value::ofF(-Regs[I.A].F);
        else
          Regs[I.Dst] = Value::ofI(normalizeRtInt(I.T, -Regs[I.A].I));
        break;
      case NOp::Cmp3:
        Regs[I.Dst] = Value::ofI(compare3(I.T, Regs[I.A], Regs[I.B]));
        break;
      case NOp::CmpCond:
        Regs[I.Dst] = Value::ofI(
            testCond((BcCond)I.Aux, compare3(I.T, Regs[I.A], Regs[I.B]))
                ? 1
                : 0);
        break;
      case NOp::Conv:
        Regs[I.Dst] = convertValue((DataType)I.Aux, I.T, Regs[I.A]);
        break;
      case NOp::Br:
        // Handled below as the terminator.
        break;
      case NOp::Jmp:
        break;
      case NOp::CallM: {
        uint32_t Target = (uint32_t)I.Aux;
        std::vector<Value> CallArgs(I.Args.size());
        for (size_t K = 0; K < I.Args.size(); ++K)
          CallArgs[K] = Regs[I.Args[K]];
        if (I.Imm == 1) { // virtual dispatch
          if (H.isNull(CallArgs[0].R)) {
            ExecResult R = Trap(RtExceptionKind::NullPointer);
            if (!Transferred)
              return R;
            break;
          }
          int32_t DynClass = H.classOf(CallArgs[0].R);
          assert(DynClass >= 0 && "virtual call on non-object");
          Target = P.resolveVirtual(Target, (uint32_t)DynClass);
        }
        ExecResult R = VM.invoke(Target, std::move(CallArgs), Depth + 1);
        if (R.Exceptional) {
          if (DispatchExc(R.ExcRef)) {
            Transferred = true;
            break;
          }
          VM.charge(CM.UnwindPerFrame * ICache);
          return R;
        }
        if (I.Dst != NoReg)
          Regs[I.Dst] = R.Ret;
        break;
      }
      case NOp::Ret:
        return ExecResult::ok(I.A == NoReg ? Value() : Regs[I.A]);
      case NOp::ThrowR: {
        uint32_t Exc = Regs[I.A].R;
        if (H.isNull(Exc)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
          break;
        }
        VM.noteException();
        if (DispatchExc(Exc)) {
          Transferred = true;
          break;
        }
        VM.charge(CM.UnwindPerFrame * ICache);
        return ExecResult::exception(Exc);
      }
      case NOp::NewObj:
        Regs[I.Dst] = Value::ofR(H.allocObject(P, (uint32_t)I.Aux));
        break;
      case NOp::NewArr: {
        int64_t Len = Regs[I.A].I;
        if (Len < 0) {
          ExecResult R = Trap(RtExceptionKind::NegativeArraySize);
          if (!Transferred)
            return R;
          break;
        }
        VM.charge(CM.AllocArrayPerElem * (double)Len * ICache);
        Regs[I.Dst] = Value::ofR(H.allocArray(I.T, (uint32_t)Len));
        break;
      }
      case NOp::NewMulti: {
        unsigned Dims = (unsigned)I.Aux;
        std::vector<int64_t> Lens(Dims);
        bool Bad = false;
        for (unsigned K = 0; K < Dims; ++K) {
          Lens[K] = Regs[I.Args[K]].I;
          if (Lens[K] < 0)
            Bad = true;
        }
        if (Bad) {
          ExecResult R = Trap(RtExceptionKind::NegativeArraySize);
          if (!Transferred)
            return R;
          break;
        }
        auto Build = [&](auto &&Self, unsigned Dim) -> uint32_t {
          uint32_t Len = (uint32_t)Lens[Dim];
          DataType ET = Dim + 1 == Dims ? I.T : DataType::Address;
          VM.charge(CM.AllocArrayPerElem * (double)Len * ICache);
          uint32_t Arr = H.allocArray(ET, Len);
          if (Dim + 1 < Dims)
            for (uint32_t K = 0; K < Len; ++K)
              H.setSlot(Arr, K, Value::ofR(Self(Self, Dim + 1)));
          return Arr;
        };
        Regs[I.Dst] = Value::ofR(Build(Build, 0));
        break;
      }
      case NOp::InstOf: {
        uint32_t Obj = Regs[I.A].R;
        bool Is = false;
        if (!H.isNull(Obj)) {
          int32_t Cls = H.classOf(Obj);
          Is = Cls >= 0 && P.isSubclassOf(Cls, I.Aux);
        }
        Regs[I.Dst] = Value::ofI(Is ? 1 : 0);
        break;
      }
      case NOp::ChkCast: {
        uint32_t Obj = Regs[I.A].R;
        if (!H.isNull(Obj)) {
          int32_t Cls = H.classOf(Obj);
          if (Cls < 0 || !P.isSubclassOf(Cls, I.Aux)) {
            ExecResult R = Trap(RtExceptionKind::ClassCast);
            if (!Transferred)
              return R;
            break;
          }
        }
        break;
      }
      case NOp::MonEnter:
      case NOp::MonExit: {
        if (H.isNull(Regs[I.A].R)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
          break;
        }
        break;
      }
      case NOp::NullChk:
        if (H.isNull(Regs[I.A].R)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
        }
        break;
      case NOp::BndChk: {
        uint32_t Arr = Regs[I.A].R;
        // A fused check covers the null test the guard-merging pass
        // removed.
        if (H.isNull(Arr)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
          break;
        }
        int64_t Idx = Regs[I.B].I;
        if (Idx < 0 || (uint64_t)Idx >= H.arrayLength(Arr)) {
          ExecResult R = Trap(RtExceptionKind::ArrayIndexOutOfBounds);
          if (!Transferred)
            return R;
        }
        break;
      }
      case NOp::DivChk:
        if (Regs[I.A].I == 0) {
          ExecResult R = Trap(RtExceptionKind::ArithmeticDivByZero);
          if (!Transferred)
            return R;
        }
        break;
      case NOp::ArrCopy: {
        uint32_t Src = Regs[I.Args[0]].R;
        int64_t SrcPos = Regs[I.Args[1]].I;
        uint32_t Dst = Regs[I.Args[2]].R;
        int64_t DstPos = Regs[I.Args[3]].I;
        int64_t Len = Regs[I.Args[4]].I;
        if (H.isNull(Src) || H.isNull(Dst)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
          break;
        }
        if (Len < 0 || SrcPos < 0 || DstPos < 0 ||
            (uint64_t)(SrcPos + Len) > H.arrayLength(Src) ||
            (uint64_t)(DstPos + Len) > H.arrayLength(Dst)) {
          ExecResult R = Trap(RtExceptionKind::ArrayIndexOutOfBounds);
          if (!Transferred)
            return R;
          break;
        }
        VM.charge(CM.ArrayCopyPerElem * (double)Len * ICache);
        for (int64_t K = 0; K < Len; ++K)
          H.setSlot(Dst, (uint32_t)(DstPos + K),
                    H.getSlot(Src, (uint32_t)(SrcPos + K)));
        break;
      }
      case NOp::ArrCmp: {
        uint32_t A = Regs[I.A].R, BRef = Regs[I.B].R;
        if (H.isNull(A) || H.isNull(BRef)) {
          ExecResult R = Trap(RtExceptionKind::NullPointer);
          if (!Transferred)
            return R;
          break;
        }
        uint32_t LenA = H.arrayLength(A), LenB = H.arrayLength(BRef);
        uint32_t N = std::min(LenA, LenB);
        VM.charge(CM.ArrayCmpPerElem * (double)N * ICache);
        int64_t Cmp = 0;
        for (uint32_t K = 0; K < N && Cmp == 0; ++K) {
          int64_t X = H.getSlot(A, K).I, Y = H.getSlot(BRef, K).I;
          Cmp = X < Y ? -1 : (X > Y ? 1 : 0);
        }
        if (Cmp == 0 && LenA != LenB)
          Cmp = LenA < LenB ? -1 : 1;
        Regs[I.Dst] = Value::ofI(Cmp);
        break;
      }
      }
      PrevDst = Transferred ? NoReg : ThisDst;
    }
    if (Transferred)
      continue; // exception dispatch already selected the next block

    // Terminator: decide the next block and charge layout-sensitive cost.
    const NativeInst &Term = B.Insts.back();
    int32_t Next;
    if (Term.Op == NOp::Br) {
      bool Taken = testCond((BcCond)Term.Aux,
                            compare3(Term.T, Regs[Term.A], Regs[Term.B]));
      Next = Taken ? B.SuccTaken : B.SuccFall;
    } else if (Term.Op == NOp::Jmp) {
      Next = B.SuccTaken;
    } else {
      assert(false && "block fell through without a terminator");
      return ExecResult::ok(Value());
    }
    assert(Next >= 0 && "terminator without a successor");
    // Transfers that do not fall through to the next block in layout
    // order cost extra (branch predictor / fetch redirect).
    if (LayoutPos[(uint32_t)Next] != LayoutPos[(uint32_t)Block] + 1)
      VM.charge(CM.BranchTakenExtra * ICache);
    Block = Next;
    PrevDst = NoReg;
  }
}
