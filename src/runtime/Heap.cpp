//===- runtime/Heap.cpp ---------------------------------------------------===//

#include "runtime/Heap.h"

using namespace jitml;

uint32_t Heap::allocObject(const Program &P, uint32_t ClassIndex) {
  Cell C;
  C.ClassIndex = (int32_t)ClassIndex;
  C.Slots.resize(P.classAt(ClassIndex).FieldTypes.size());
  BytesAllocated += 16 + 8 * C.Slots.size();
  Cells.push_back(std::move(C));
  return (uint32_t)Cells.size() - 1;
}

uint32_t Heap::allocArray(DataType ElemType, uint32_t Length) {
  Cell C;
  C.IsArray = true;
  C.ElemType = ElemType;
  C.Slots.resize(Length);
  BytesAllocated += 16 + 8 * (uint64_t)Length;
  Cells.push_back(std::move(C));
  return (uint32_t)Cells.size() - 1;
}

uint32_t Heap::allocException(RtExceptionKind Kind) {
  Cell C;
  C.ClassIndex = (int32_t)Kind;
  BytesAllocated += 16;
  Cells.push_back(std::move(C));
  return (uint32_t)Cells.size() - 1;
}
