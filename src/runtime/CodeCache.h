//===- runtime/CodeCache.h - Atomic code installation handoff ---*- C++ -*-===//
///
/// \file
/// The per-method table of compiled bodies, built for a dispatch loop that
/// must never take a lock: lookup() is a single acquire-load of the slot's
/// pointer, so the interpreter picks up freshly installed code at the next
/// invocation with no synchronization beyond the load itself.
///
/// Memory-ordering contract: install() publishes the fully constructed
/// NativeMethod with a release store; lookup() reads it with an acquire
/// load. Everything the compiler wrote into the body therefore
/// happens-before any execution of it on the reading thread.
///
/// Install ordering: every installation carries the ticket its compile
/// request drew (CompilationQueue). A slot only accepts tickets newer than
/// the last accepted one, so when a recompilation races an in-progress
/// compile of the same method, whichever worker finishes *last* cannot
/// clobber the *newer* request's code — the stale body is rejected and
/// retired unpublished.
///
/// Reclamation: replaced (and rejected) bodies are parked on a retire
/// list instead of being freed, because an execution engine may still be
/// running them — a recursive method can trigger its own recompilation
/// while outer frames of the old body are live, and in async mode the
/// interpreter thread may be mid-body when a worker installs. Retired
/// bodies are reclaimed by reclaimRetired() at known-quiescent points (VM
/// destruction, explicit drain), never during execution.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_RUNTIME_CODECACHE_H
#define JITML_RUNTIME_CODECACHE_H

#include "codegen/NativeInst.h"
#include "support/Telemetry.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace jitml {

class CodeCache {
public:
  CodeCache();
  CodeCache(const CodeCache &) = delete;
  CodeCache &operator=(const CodeCache &) = delete;

  /// Sizes the table; call once before any install/lookup.
  void reset(size_t NumMethods);

  /// Wait-free read of the current body; nullptr while interpreted.
  const NativeMethod *lookup(uint32_t MethodIndex) const {
    return Slots[MethodIndex].Body.load(std::memory_order_acquire);
  }

  /// Publishes \p Body for \p MethodIndex if \p Ticket is newer than the
  /// slot's last accepted install. Returns true when the body became
  /// current; false means a newer compile already landed and \p Body was
  /// retired unpublished.
  bool install(uint32_t MethodIndex, std::unique_ptr<NativeMethod> Body,
               uint64_t Ticket);

  /// Frees retired bodies. Only call when no engine can be executing old
  /// code (single-threaded operation, or after a pipeline drain with no
  /// invocation in progress).
  void reclaimRetired();

  uint64_t installs() const {
    return Installs.load(std::memory_order_relaxed);
  }
  uint64_t staleRejected() const {
    return StaleRejected.load(std::memory_order_relaxed);
  }
  size_t retiredCount() const;

  ~CodeCache();

private:
  struct Slot {
    std::atomic<const NativeMethod *> Body{nullptr};
    uint64_t LastTicket = 0; ///< guarded by Mu
  };

  /// Process-wide metrics (aggregated across caches); the per-instance
  /// Installs/StaleRejected counters below stay authoritative for tests.
  struct TelemetryRefs {
    TelemetryCounter *Installs, *Stale, *Reclaimed;
  };

  std::vector<Slot> Slots;
  TelemetryRefs Tel;
  mutable std::mutex Mu; ///< serializes installs and the retire list
  std::vector<std::unique_ptr<NativeMethod>> Retired;
  std::atomic<uint64_t> Installs{0};
  std::atomic<uint64_t> StaleRejected{0};
};

} // namespace jitml

#endif // JITML_RUNTIME_CODECACHE_H
