//===- runtime/CompilationQueue.h - Bounded MPMC compile queue --*- C++ -*-===//
///
/// \file
/// The waiting room between the interpreter and the compiler worker pool:
/// a bounded, thread-safe multi-producer/multi-consumer queue of compile
/// requests, ordered by priority (the method's invocation count, so the
/// hottest method is always compiled next — Testarossa's compilation queue
/// behaves the same way).
///
/// Three properties matter for the dispatch loop:
///  * bounded: a full queue rejects the request (Overflow) and the caller
///    keeps interpreting — backpressure never blocks the application;
///  * coalescing: a request for a method that is already pending replaces
///    the pending entry (highest level / priority / newest ticket wins)
///    instead of occupying a second slot, so the triggers re-firing every
///    invocation until the install lands cannot flood the queue;
///  * tickets: every accepted request carries a monotonically increasing
///    ticket drawn at enqueue time. Installation order is resolved by
///    ticket, so a stale compile finishing late can never overwrite the
///    code of a newer request (see CodeCache).
///
/// In-flight bookkeeping (markInFlight/noteDone) lets drain() wait for
/// true quiescence: empty queue AND no compilation between dequeue and
/// install.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_RUNTIME_COMPILATIONQUEUE_H
#define JITML_RUNTIME_COMPILATIONQUEUE_H

#include "opt/Plan.h"
#include "support/Telemetry.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

namespace jitml {

/// One queued compilation request.
struct AsyncCompileTask {
  uint32_t MethodIndex = 0;
  OptLevel Level = OptLevel::Cold;
  bool IsExplorationRecompile = false;
  /// Invocation count at request time; the queue serves high values first.
  uint64_t Priority = 0;
  /// Request-order sequence number; installs are ordered by it.
  uint64_t Ticket = 0;
  /// Wall time the method first entered the queue (telemetryNowUs);
  /// coalescing keeps the oldest so the queue-wait span covers the full
  /// time the method waited for a compile.
  uint64_t EnqueueUs = 0;
};

class CompilationQueue {
public:
  enum class EnqueueResult : uint8_t {
    Enqueued,  ///< a new pending entry was created
    Coalesced, ///< merged into an existing pending entry for the method
    Overflow,  ///< queue full: caller keeps interpreting
    Closed,    ///< shutdown already started
  };

  /// Monotonic counters (snapshot via counters()).
  struct Counters {
    uint64_t Enqueued = 0;
    uint64_t Coalesced = 0;
    uint64_t Overflows = 0;
    uint64_t Dequeued = 0;
    uint64_t Discarded = 0; ///< pending entries dropped by close(false)
    uint64_t MaxDepth = 0;  ///< high-water mark of pending entries
  };

  explicit CompilationQueue(size_t Capacity);

  /// Submits a request. Never blocks. Tickets are assigned internally in
  /// arrival order (also on coalesce: the merged entry takes the newest
  /// ticket, since it represents the newest request).
  EnqueueResult enqueue(uint32_t MethodIndex, OptLevel Level,
                        bool IsExploration, uint64_t Priority);

  /// Blocks until a task is available or the queue is closed; nullopt
  /// means "closed and drained" and tells a worker to exit. The dequeued
  /// method is marked in-flight until noteDone().
  std::optional<AsyncCompileTask> dequeue();

  /// Dequeues up to \p Max tasks in one lock acquisition (so one batched
  /// model round trip can serve a whole backlog). Blocks like dequeue();
  /// an empty vector means the queue is closed.
  std::vector<AsyncCompileTask> dequeueBatch(size_t Max);

  /// Marks a dequeued task's compilation complete (install done or task
  /// abandoned). Required for drain() to observe quiescence.
  void noteDone(uint32_t MethodIndex);

  /// Blocks until no task is pending or in flight. Safe to call while
  /// producers are quiet; racing producers just extend the wait.
  void drain();

  /// Stops accepting work. With \p FinishPending, workers drain what is
  /// queued before seeing "closed"; otherwise pending entries are
  /// discarded (counted) and only in-flight compilations finish.
  void close(bool FinishPending);

  /// Draws a ticket without enqueueing. Synchronous (direct) compiles use
  /// this so their installs order correctly against queued requests.
  uint64_t takeTicket();

  size_t pendingSize() const;
  bool isClosed() const;
  Counters counters() const;

private:
  bool quiescentLocked() const { return Pending.empty() && InFlight.empty(); }

  /// Process-wide metrics (aggregated across every queue instance),
  /// resolved once at construction. Per-instance numbers stay in Count.
  struct TelemetryRefs {
    TelemetryCounter *Enqueued, *Coalesced, *Overflows, *Dequeued,
        *Discarded;
    TelemetryHistogram *WaitUs; ///< enqueue -> dequeue wall us
  };

  const size_t Capacity;
  TelemetryRefs Tel;
  mutable std::mutex Mu;
  std::condition_variable WorkCv;  ///< signaled on enqueue/close
  std::condition_variable DrainCv; ///< signaled on possible quiescence
  std::vector<AsyncCompileTask> Pending;
  std::unordered_multiset<uint32_t> InFlight;
  uint64_t NextTicket = 1;
  bool Closed = false;
  Counters Count;
};

} // namespace jitml

#endif // JITML_RUNTIME_COMPILATIONQUEUE_H
