//===- runtime/VirtualMachine.h - The VM facade -----------------*- C++ -*-===//
///
/// \file
/// The complete simulated VM: interpreter + JIT + adaptive compilation
/// control + heap + simulated clock. One VirtualMachine instance is one
/// "JVM invocation" in the paper's terminology; the harness constructs a
/// fresh one per run.
///
/// Two extension points reproduce the paper's architecture:
///  * ModifierHook — the Strategy Control attachment point. During data
///    collection it pulls modifiers from modifiers::StrategyControl; in
///    learning-enabled mode it queries the machine-learned model through
///    the bridge (Figure 5). Default: always the null modifier (the
///    out-of-the-box compiler).
///  * JitEventListener — the lightweight method profiling of section 4.2
///    (TSC-timestamped enter/exit events and compile records). The
///    collect module implements it to build archives.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_RUNTIME_VIRTUALMACHINE_H
#define JITML_RUNTIME_VIRTUALMACHINE_H

#include "codegen/CodeGenerator.h"
#include "features/FeatureVector.h"
#include "modifiers/Modifier.h"
#include "runtime/AsyncCompiler.h"
#include "runtime/CodeCache.h"
#include "runtime/CompilationControl.h"
#include "runtime/Heap.h"
#include "runtime/SimClock.h"

#include <functional>
#include <memory>
#include <optional>

namespace jitml {

/// Outcome of executing one method body.
struct ExecResult {
  bool Exceptional = false;
  Value Ret;         ///< valid when !Exceptional
  uint32_t ExcRef = NullRef; ///< valid when Exceptional

  static ExecResult ok(Value V) {
    ExecResult R;
    R.Ret = V;
    return R;
  }
  static ExecResult exception(uint32_t Ref) {
    ExecResult R;
    R.Exceptional = true;
    R.ExcRef = Ref;
    return R;
  }
};

/// Everything the instrumentation needs to know about one compilation.
struct CompileEvent {
  uint32_t MethodIndex = 0;
  OptLevel Level = OptLevel::Cold;
  PlanModifier Modifier;
  FeatureVector Features;
  double CompileCycles = 0.0;
  bool IsExplorationRecompile = false;
};

/// Profiling callbacks (TR_jitPTTMethodEnter/Exit analogues).
class JitEventListener {
public:
  virtual ~JitEventListener();
  /// Called on entry of an instrumented (compiled) method.
  virtual void onMethodEnter(uint32_t MethodIndex, const TscSample &Now) = 0;
  /// Called on every exit path, including exceptional unwinds.
  virtual void onMethodExit(uint32_t MethodIndex, const TscSample &Now,
                            bool Exceptional) = 0;
  virtual void onCompile(const CompileEvent &Event) = 0;
};

class VirtualMachine {
public:
  using ModifierHook = std::function<PlanModifier(
      uint32_t MethodIndex, OptLevel Level, const FeatureVector &Features)>;
  /// Called right after an exploration recompile was issued; lets the
  /// strategy control freeze methods that hit their modifier budget.
  using RecompileGate = std::function<bool(uint32_t MethodIndex)>;

  /// Background-compilation mode. Off by default: synchronous compilation
  /// stays fully deterministic, which the collection/measurement harness
  /// and most tests rely on. When enabled, compile requests are queued and
  /// served by worker threads while the interpreter keeps running; compile
  /// cycles then no longer advance the interpreter's clock (the compiler
  /// has its own core), and a full queue simply means the method keeps
  /// interpreting until a slot frees up.
  struct AsyncConfig {
    bool Enabled = false;
    unsigned Workers = 2;
    size_t QueueCapacity = 64;
    /// Max compile requests served by one batched model round trip.
    size_t MaxPredictBatch = 8;
  };

  struct Config {
    SimClock::Config Clock;
    CostModel Cost;
    CompilationControl::Config Control;
    AsyncConfig Async;
    /// false = pure interpreter (no JIT at all).
    bool EnableJit = true;
    /// Instrument compiled methods with enter/exit profiling events.
    bool InstrumentMethods = false;
    unsigned MaxCallDepth = 512;
  };

  VirtualMachine(const Program &P, const Config &C);
  ~VirtualMachine();

  /// Runs the program's entry method with integer arguments. Returns the
  /// result, or the exception that escaped main.
  ExecResult run(const std::vector<Value> &Args = {});

  /// Invokes an arbitrary method (used by both engines for calls and by
  /// tests to drive single methods). \p Depth guards against runaway
  /// recursion.
  ExecResult invoke(uint32_t MethodIndex, std::vector<Value> Args,
                    unsigned Depth = 0);

  /// Forces a compilation at \p Level right now (tests, examples).
  void compileMethod(uint32_t MethodIndex, OptLevel Level,
                     bool IsExploration = false);

  /// Compiles with an explicit plan and modifier, bypassing the modifier
  /// hook — the workhorse behind compileMethod and the plan-exploration
  /// tooling.
  void compileWithPlan(uint32_t MethodIndex, const CompilationPlan &Plan,
                       const PlanModifier &Modifier,
                       bool IsExploration = false);

  /// Set hooks before execution starts. In async mode the hook is shared
  /// by the worker threads and must be thread-safe (ResilientModelClient
  /// and LearnedStrategyProvider are).
  void setModifierHook(ModifierHook H);
  /// Async mode only: lets one bridge round trip serve a whole worker
  /// backlog (the PredictBatch message). Ignored in sync mode.
  void setBatchModifierHook(AsyncCompilePipeline::BatchModifierFn H);
  void setListener(JitEventListener *L) { Listener = L; }
  void setRecompileGate(RecompileGate G) { Gate = std::move(G); }

  /// True when background compilation workers are running.
  bool asyncEnabled() const { return AsyncPipe != nullptr; }

  /// Async mode: blocks until every queued/in-flight compilation has been
  /// installed and its bookkeeping applied, then reclaims retired code.
  /// Call from the interpreter thread between invocations (not from a
  /// hook or listener). No-op in sync mode.
  void drainCompilations();

  /// Async mode: the pipeline's queue counters (overflows, coalesces,
  /// depth high-water mark). Zeroes in sync mode.
  CompilationQueue::Counters asyncQueueCounters() const;

  const CodeCache &codeCache() const { return Code; }

  const Program &program() const { return Prog; }
  Heap &heap() { return TheHeap; }
  SimClock &clock() { return Clock; }
  CompilationControl &control() { return Control; }
  const Config &config() const { return Cfg; }
  const CostModel &costModel() const { return Cfg.Cost; }

  Value getGlobal(uint32_t Slot) const { return Globals[Slot]; }
  void setGlobal(uint32_t Slot, Value V) { Globals[Slot] = V; }

  /// Compiled body of a method, or nullptr while interpreted.
  const NativeMethod *nativeOf(uint32_t MethodIndex) const;

  /// Loop class of a method (cached; computed from freshly generated IL).
  LoopClass loopClassOf(uint32_t MethodIndex);

  // --- Statistics for the harness ---
  struct Stats {
    double AppCycles = 0.0;     ///< cycles spent executing the program
    double CompileCycles = 0.0; ///< cycles spent compiling
    uint64_t Compilations = 0;
    uint64_t ExplorationRecompiles = 0;
    uint64_t Invocations = 0;
    uint64_t InterpretedInvocations = 0;
    uint64_t ExceptionsRaised = 0;
    /// Compilations that ran with the null modifier, i.e. the unmodified
    /// hand-tuned plan — the strategy control's fallback path.
    uint64_t NullModifierCompilations = 0;
    /// Modifier hook invocations that threw; the compilation proceeded
    /// with the null modifier instead of aborting the VM.
    uint64_t HookFailures = 0;
    // --- Async pipeline (all zero in sync mode) ---
    /// Cycles spent compiling on worker threads. Unlike CompileCycles
    /// these do not advance the interpreter's clock: the background
    /// compiler runs on its own core.
    double AsyncCompileCycles = 0.0;
    uint64_t AsyncCompileRequests = 0; ///< requests accepted by the queue
    uint64_t AsyncCoalescedRequests = 0; ///< merged into a pending request
    /// Requests rejected by a full queue; the method kept interpreting
    /// (backpressure falls back to interpretation, never blocks).
    uint64_t AsyncQueueOverflows = 0;
    uint64_t AsyncInstalls = 0; ///< worker compilations that became current
    /// Worker compilations that lost the install race to a newer ticket.
    uint64_t AsyncStaleCompiles = 0;
    /// Interpreter-thread wall cycles (what the application experiences).
    double totalCycles() const { return AppCycles + CompileCycles; }
  };
  const Stats &stats() const { return Stat; }

  // Internal (used by the execution engines; not part of the public API).
  ExecResult raise(RtExceptionKind Kind);
  void charge(double Cycles) {
    Clock.advance(Cycles);
    Stat.AppCycles += Cycles;
  }
  void noteException() { ++Stat.ExceptionsRaised; }

private:
  friend ExecResult interpretMethod(VirtualMachine &, uint32_t,
                                    std::vector<Value>, unsigned);
  friend ExecResult executeNative(VirtualMachine &, const NativeMethod &,
                                  std::vector<Value>, unsigned);

  /// Applies buffered worker completions to the single-threaded VM state
  /// (CompilationControl, statistics, listener) on the interpreter thread.
  void flushAsyncCompletions();
  /// Routes a trigger to the pipeline (async) or compiles inline (sync).
  void serviceCompileRequest(const CompileRequest &Req);
  uint64_t nextInstallTicket();

  const Program &Prog;
  Config Cfg;
  SimClock Clock;
  Heap TheHeap;
  CompilationControl Control;
  std::vector<Value> Globals;
  CodeCache Code; ///< per-method compiled bodies (atomic handoff)
  std::vector<int8_t> LoopClassCache; ///< -1 = unknown
  ModifierHook Hook;
  RecompileGate Gate;
  JitEventListener *Listener = nullptr;
  Stats Stat;
  uint64_t SyncTicket = 0; ///< install sequence when no pipeline exists
  /// Declared last: destroyed first, so workers are joined before any
  /// state they reference goes away.
  std::unique_ptr<AsyncCompilePipeline> AsyncPipe;
};

} // namespace jitml

#endif // JITML_RUNTIME_VIRTUALMACHINE_H
