//===- runtime/CodeCache.cpp ----------------------------------------------===//

#include "runtime/CodeCache.h"

#include "support/FaultInjection.h"

using namespace jitml;

CodeCache::CodeCache() {
  MetricRegistry &R = MetricRegistry::global();
  Tel.Installs = &R.counter("cache.installs");
  Tel.Stale = &R.counter("cache.stale_rejected");
  Tel.Reclaimed = &R.counter("cache.reclaimed");
}

void CodeCache::reset(size_t NumMethods) {
  Slots = std::vector<Slot>(NumMethods);
}

bool CodeCache::install(uint32_t MethodIndex,
                        std::unique_ptr<NativeMethod> Body, uint64_t Ticket) {
  assert(MethodIndex < Slots.size() && "method index out of range");
  std::lock_guard<std::mutex> Lock(Mu);
  Slot &S = Slots[MethodIndex];
  // Forced stale install: treat this body as having lost the ticket race,
  // without advancing LastTicket — later genuine installs still win.
  bool ForcedStale = JITML_FAULT_POINT("cache.install.stale");
  if (ForcedStale || Ticket <= S.LastTicket) {
    // A newer request's code already landed; this body lost the race.
    StaleRejected.fetch_add(1, std::memory_order_relaxed);
    Tel.Stale->add();
    if (TraceEmitter::global().enabled()) {
      TraceEvent E;
      E.Stage = "cache_install";
      E.StartUs = telemetryNowUs();
      E.Method = MethodIndex;
      E.Detail = "stale";
      E.Ok = false;
      TraceEmitter::global().record(E);
    }
    Retired.push_back(std::move(Body));
    return false;
  }
  const NativeMethod *Old = S.Body.load(std::memory_order_relaxed);
  S.LastTicket = Ticket;
  // Release: the body's contents are complete before the pointer is
  // visible to the dispatch loop's acquire load.
  S.Body.store(Body.release(), std::memory_order_release);
  if (Old)
    Retired.push_back(
        std::unique_ptr<NativeMethod>(const_cast<NativeMethod *>(Old)));
  Installs.fetch_add(1, std::memory_order_relaxed);
  Tel.Installs->add();
  if (TraceEmitter::global().enabled()) {
    TraceEvent E;
    E.Stage = "cache_install";
    E.StartUs = telemetryNowUs();
    E.Method = MethodIndex;
    E.Detail = "installed";
    TraceEmitter::global().record(E);
  }
  return true;
}

void CodeCache::reclaimRetired() {
  if (JITML_FAULT_POINT("cache.reclaim.defer"))
    return; // simulated reclamation pressure: retired bodies accumulate
  std::lock_guard<std::mutex> Lock(Mu);
  Tel.Reclaimed->add(Retired.size());
  Retired.clear();
}

size_t CodeCache::retiredCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Retired.size();
}

CodeCache::~CodeCache() {
  for (Slot &S : Slots)
    delete S.Body.load(std::memory_order_relaxed);
}
