//===- runtime/CompilationQueue.cpp ---------------------------------------===//

#include "runtime/CompilationQueue.h"

#include "support/FaultInjection.h"

#include <algorithm>

using namespace jitml;

CompilationQueue::CompilationQueue(size_t Capacity) : Capacity(Capacity) {
  MetricRegistry &R = MetricRegistry::global();
  Tel.Enqueued = &R.counter("queue.enqueued");
  Tel.Coalesced = &R.counter("queue.coalesced");
  Tel.Overflows = &R.counter("queue.overflows");
  Tel.Dequeued = &R.counter("queue.dequeued");
  Tel.Discarded = &R.counter("queue.discarded");
  Tel.WaitUs = &R.histogram("queue.wait");
}

CompilationQueue::EnqueueResult
CompilationQueue::enqueue(uint32_t MethodIndex, OptLevel Level,
                          bool IsExploration, uint64_t Priority) {
  EnqueueResult Result;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Closed)
      return EnqueueResult::Closed;

    // Forced backpressure: reject as if the queue were at capacity. The
    // caller must keep running the method at its current tier.
    if (JITML_FAULT_POINT("queue.enqueue.overflow")) {
      ++Count.Overflows;
      Tel.Overflows->add();
      return EnqueueResult::Overflow;
    }

    auto It = std::find_if(Pending.begin(), Pending.end(),
                           [&](const AsyncCompileTask &T) {
                             return T.MethodIndex == MethodIndex;
                           });
    if (It != Pending.end()) {
      // Coalesce: the newest request supersedes the pending one. Keep the
      // higher level (a promotion beats a same-level exploration request)
      // and the higher priority; the merged entry takes a fresh ticket so
      // its install outranks anything already in flight for this method.
      It->Level = std::max(It->Level, Level);
      It->IsExplorationRecompile = IsExploration && It->IsExplorationRecompile;
      It->Priority = std::max(It->Priority, Priority);
      It->Ticket = NextTicket++;
      ++Count.Coalesced;
      Tel.Coalesced->add();
      Result = EnqueueResult::Coalesced;
    } else if (Pending.size() >= Capacity) {
      ++Count.Overflows;
      Tel.Overflows->add();
      return EnqueueResult::Overflow;
    } else {
      AsyncCompileTask T;
      T.MethodIndex = MethodIndex;
      T.Level = Level;
      T.IsExplorationRecompile = IsExploration;
      T.Priority = Priority;
      T.Ticket = NextTicket++;
      T.EnqueueUs = telemetryNowUs();
      Pending.push_back(T);
      ++Count.Enqueued;
      Tel.Enqueued->add();
      Count.MaxDepth = std::max(Count.MaxDepth, (uint64_t)Pending.size());
      Result = EnqueueResult::Enqueued;
    }
  }
  WorkCv.notify_one();
  return Result;
}

std::optional<AsyncCompileTask> CompilationQueue::dequeue() {
  std::vector<AsyncCompileTask> Batch = dequeueBatch(1);
  if (Batch.empty())
    return std::nullopt;
  return Batch.front();
}

std::vector<AsyncCompileTask> CompilationQueue::dequeueBatch(size_t Max) {
  std::unique_lock<std::mutex> Lock(Mu);
  WorkCv.wait(Lock, [&] { return !Pending.empty() || Closed; });
  std::vector<AsyncCompileTask> Out;
  while (Out.size() < Max && !Pending.empty()) {
    // Highest invocation count first (ties broken toward the older
    // request, which has waited longest). Linear scan: the queue is
    // bounded and small, so this beats heap bookkeeping under coalescing.
    auto Best = std::max_element(Pending.begin(), Pending.end(),
                                 [](const AsyncCompileTask &A,
                                    const AsyncCompileTask &B) {
                                   if (A.Priority != B.Priority)
                                     return A.Priority < B.Priority;
                                   return A.Ticket > B.Ticket;
                                 });
    Out.push_back(*Best);
    Pending.erase(Best);
    InFlight.insert(Out.back().MethodIndex);
    ++Count.Dequeued;
  }
  Lock.unlock(); // telemetry below is lock-free; drop Mu before any stall
  // Forced race window: the worker now holds dequeued, in-flight items but
  // not the lock — exactly when a concurrent close()/drain() must wait for
  // noteDone rather than deadlock or discard the batch.
  uint64_t StallMs = 1;
  if (!Out.empty() && JITML_FAULT_POINT_ARG("queue.dequeue.stall", StallMs))
    faultDelayMs(StallMs);
  Tel.Dequeued->add(Out.size());
  uint64_t Now = telemetryNowUs();
  TraceEmitter &Trace = TraceEmitter::global();
  for (const AsyncCompileTask &T : Out) {
    uint64_t Wait = Now > T.EnqueueUs ? Now - T.EnqueueUs : 0;
    Tel.WaitUs->record(Wait);
    if (Trace.enabled()) {
      TraceEvent E;
      E.Stage = "queue_wait";
      E.StartUs = T.EnqueueUs;
      E.DurUs = Wait;
      E.Method = T.MethodIndex;
      E.Level = (int)T.Level;
      Trace.record(E);
    }
  }
  return Out;
}

void CompilationQueue::noteDone(uint32_t MethodIndex) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = InFlight.find(MethodIndex);
    assert(It != InFlight.end() && "noteDone without matching dequeue");
    InFlight.erase(It);
    if (!quiescentLocked())
      return;
  }
  DrainCv.notify_all();
}

void CompilationQueue::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  DrainCv.wait(Lock, [&] { return quiescentLocked(); });
}

void CompilationQueue::close(bool FinishPending) {
  bool Quiescent;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
    if (!FinishPending) {
      Count.Discarded += Pending.size();
      Tel.Discarded->add(Pending.size());
      Pending.clear();
    }
    Quiescent = quiescentLocked();
  }
  WorkCv.notify_all();
  if (Quiescent)
    DrainCv.notify_all();
}

uint64_t CompilationQueue::takeTicket() {
  std::lock_guard<std::mutex> Lock(Mu);
  return NextTicket++;
}

size_t CompilationQueue::pendingSize() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Pending.size();
}

bool CompilationQueue::isClosed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Closed;
}

CompilationQueue::Counters CompilationQueue::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Count;
}
