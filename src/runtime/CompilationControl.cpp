//===- runtime/CompilationControl.cpp -------------------------------------===//

#include "runtime/CompilationControl.h"

#include <algorithm>

using namespace jitml;

std::optional<CompileRequest>
CompilationControl::onInvocationEnd(uint32_t MethodIndex, double Cycles,
                                    LoopClass LC) {
  if (!Cfg.Enabled)
    return std::nullopt;
  MethodState &S = stateOf(MethodIndex);
  ++S.Invocations;
  ++S.SinceCompile;
  ++S.SincePromotion;
  S.CyclesSinceCompile += Cycles;
  S.CyclesSincePromotion += Cycles;
  if (S.Invocations <= 8)
    S.FirstEightCycles += Cycles;

  unsigned LCIdx = (unsigned)LC;
  assert(LCIdx < 3 && "unexpected loop class");

  // Promotion: next level's invocation trigger or the time-sampling
  // trigger for the current tier.
  unsigned Tier = S.Compiled ? (unsigned)S.Level + 1 : 0;
  if (Tier < NumOptLevels) {
    // Exploration recompiles reset SinceCompile but must not starve
    // promotion, so promotion watches its own counters.
    bool Promote =
        S.SincePromotion >= Cfg.InvocationTriggers[Tier][LCIdx] ||
        S.CyclesSincePromotion >= Cfg.CycleTriggers[Tier];
    if (Promote) {
      CompileRequest Req;
      Req.MethodIndex = MethodIndex;
      Req.Level = (OptLevel)Tier;
      return Req;
    }
  }

  // Collection mode: same-level exploration recompiles.
  if (Cfg.CollectMode && S.Compiled && !S.ExplorationFrozen) {
    if (S.ExplorationThreshold == 0 && S.Invocations >= 8) {
      double PerInvocation = S.FirstEightCycles / 8.0;
      double Wanted = PerInvocation > 0.0
                          ? Cfg.ExplorationTargetCycles / PerInvocation
                          : Cfg.ExplorationMaxInvocations;
      S.ExplorationThreshold = (uint32_t)std::clamp(
          Wanted, (double)Cfg.ExplorationMinInvocations,
          (double)Cfg.ExplorationMaxInvocations);
    }
    if (S.ExplorationThreshold != 0 &&
        S.SinceCompile >= S.ExplorationThreshold) {
      CompileRequest Req;
      Req.MethodIndex = MethodIndex;
      Req.Level = S.Level;
      Req.IsExplorationRecompile = true;
      return Req;
    }
  }
  return std::nullopt;
}

void CompilationControl::noteCompiled(uint32_t MethodIndex, OptLevel Level) {
  MethodState &S = stateOf(MethodIndex);
  bool LevelChanged = !S.Compiled || S.Level != Level;
  S.Compiled = true;
  S.Level = Level;
  S.SinceCompile = 0;
  S.CyclesSinceCompile = 0.0;
  if (LevelChanged) {
    S.SincePromotion = 0;
    S.CyclesSincePromotion = 0.0;
  }
}

std::optional<OptLevel>
CompilationControl::levelOf(uint32_t MethodIndex) const {
  auto It = States.find(MethodIndex);
  if (It == States.end() || !It->second.Compiled)
    return std::nullopt;
  return It->second.Level;
}

uint64_t CompilationControl::invocationsOf(uint32_t MethodIndex) const {
  auto It = States.find(MethodIndex);
  return It == States.end() ? 0 : It->second.Invocations;
}
