//===- runtime/Interpreter.cpp - Bytecode interpreter ---------------------===//
//
// The pre-JIT execution engine: direct threaded interpretation of the
// stack bytecode with per-opcode dispatch cost. Semantics must match the
// native executor exactly (the differential tests depend on it).
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecInternal.h"

#include "runtime/RuntimeOps.h"

using namespace jitml;

namespace {

/// Per-opcode interpretation cost: dispatch overhead plus the operation's
/// intrinsic cost from the shared model.
double interpCost(const CostModel &CM, const BcInst &I) {
  double Base = CM.InterpDispatch;
  switch (I.Op) {
  case BcOp::Mul:
    return Base + CM.MulCost;
  case BcOp::Div:
  case BcOp::Rem:
    return Base + CM.DivCost;
  case BcOp::GetField:
  case BcOp::PutField:
    return Base + CM.FieldAccess;
  case BcOp::ALoad:
  case BcOp::AStore:
    return Base + CM.ElemAccess + CM.BoundsCost;
  case BcOp::GetGlobal:
  case BcOp::PutGlobal:
    return Base + CM.GlobalAccess;
  case BcOp::New:
    return Base + CM.AllocObject;
  case BcOp::NewArray:
  case BcOp::NewMultiArray:
    return Base + CM.AllocArrayBase;
  case BcOp::MonitorEnter:
  case BcOp::MonitorExit:
    return Base + CM.MonitorCost;
  case BcOp::Throw:
    return Base + CM.ThrowCost;
  case BcOp::InstanceOf:
  case BcOp::CheckCast:
    return Base + CM.InstanceOfCost;
  case BcOp::ArrayCopy:
    return Base + CM.ArrayCopyBase;
  case BcOp::ArrayCmp:
    return Base + CM.ArrayCmpBase;
  case BcOp::Call:
  case BcOp::CallVirtual:
    return Base; // call overhead charged by VirtualMachine::invoke
  default:
    return Base + CM.Alu;
  }
}

} // namespace

ExecResult jitml::interpretMethod(VirtualMachine &VM, uint32_t MethodIndex,
                                  std::vector<Value> Args, unsigned Depth) {
  const Program &P = VM.program();
  const MethodInfo &M = P.methodAt(MethodIndex);
  const CostModel &CM = VM.costModel();
  Heap &H = VM.heap();

  std::vector<Value> Locals(M.NumLocals);
  for (size_t I = 0; I < Args.size(); ++I)
    Locals[I] = Args[I];
  std::vector<Value> Stack;
  Stack.reserve(M.MaxStack);

  auto Pop = [&Stack]() {
    assert(!Stack.empty() && "interpreter stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  };

  uint32_t Pc = 0;
  // Exception dispatch: find a handler covering ThrowPc, or return.
  auto Dispatch = [&](uint32_t ThrowPc, uint32_t ExcRef,
                      uint32_t &NewPc) -> bool {
    for (const ExceptionEntry &E : M.ExceptionTable) {
      if (ThrowPc < E.StartPc || ThrowPc >= E.EndPc)
        continue;
      if (E.ClassIndex >= 0) {
        int32_t Cls = H.classOf(ExcRef);
        if (Cls < 0 || !P.isSubclassOf(Cls, E.ClassIndex))
          continue;
      }
      Stack.clear();
      Stack.push_back(Value::ofR(ExcRef));
      NewPc = E.HandlerPc;
      return true;
    }
    return false;
  };
  auto Raise = [&](RtExceptionKind Kind, uint32_t ThrowPc,
                   ExecResult &Out) -> bool {
    uint32_t Exc = H.allocException(Kind);
    VM.noteException();
    uint32_t NewPc = 0;
    if (Dispatch(ThrowPc, Exc, NewPc)) {
      Pc = NewPc;
      return false; // handled locally, keep running
    }
    VM.charge(CM.UnwindPerFrame);
    Out = ExecResult::exception(Exc);
    return true;
  };

  while (true) {
    assert(Pc < M.Code.size() && "interpreter ran off the code");
    const BcInst &I = M.Code[Pc];
    VM.charge(interpCost(CM, I));
    ExecResult Out;
    switch (I.Op) {
    case BcOp::Nop:
      break;
    case BcOp::Const:
      if (isFloatType(I.Type))
        Stack.push_back(Value::ofF(I.ImmF));
      else
        Stack.push_back(Value::ofI(I.ImmI));
      break;
    case BcOp::Load:
      Stack.push_back(Locals[(uint32_t)I.A]);
      break;
    case BcOp::Store:
      Locals[(uint32_t)I.A] = Pop();
      break;
    case BcOp::Inc:
      Locals[(uint32_t)I.A].I =
          normalizeRtInt(I.Type, Locals[(uint32_t)I.A].I + I.B);
      break;
    case BcOp::GetField: {
      Value Obj = Pop();
      if (H.isNull(Obj.R)) {
        if (Raise(RtExceptionKind::NullPointer, Pc, Out))
          return Out;
        continue;
      }
      Stack.push_back(H.getSlot(Obj.R, (uint32_t)I.A));
      break;
    }
    case BcOp::PutField: {
      Value V = Pop();
      Value Obj = Pop();
      if (H.isNull(Obj.R)) {
        if (Raise(RtExceptionKind::NullPointer, Pc, Out))
          return Out;
        continue;
      }
      H.setSlot(Obj.R, (uint32_t)I.A, V);
      break;
    }
    case BcOp::GetGlobal:
      Stack.push_back(VM.getGlobal((uint32_t)I.A));
      break;
    case BcOp::PutGlobal:
      VM.setGlobal((uint32_t)I.A, Pop());
      break;
    case BcOp::ALoad: {
      Value Idx = Pop();
      Value Arr = Pop();
      if (H.isNull(Arr.R)) {
        if (Raise(RtExceptionKind::NullPointer, Pc, Out))
          return Out;
        continue;
      }
      if (Idx.I < 0 || (uint64_t)Idx.I >= H.arrayLength(Arr.R)) {
        if (Raise(RtExceptionKind::ArrayIndexOutOfBounds, Pc, Out))
          return Out;
        continue;
      }
      Stack.push_back(H.getSlot(Arr.R, (uint32_t)Idx.I));
      break;
    }
    case BcOp::AStore: {
      Value V = Pop();
      Value Idx = Pop();
      Value Arr = Pop();
      if (H.isNull(Arr.R)) {
        if (Raise(RtExceptionKind::NullPointer, Pc, Out))
          return Out;
        continue;
      }
      if (Idx.I < 0 || (uint64_t)Idx.I >= H.arrayLength(Arr.R)) {
        if (Raise(RtExceptionKind::ArrayIndexOutOfBounds, Pc, Out))
          return Out;
        continue;
      }
      H.setSlot(Arr.R, (uint32_t)Idx.I, V);
      break;
    }
    case BcOp::ArrayLen: {
      Value Arr = Pop();
      if (H.isNull(Arr.R)) {
        if (Raise(RtExceptionKind::NullPointer, Pc, Out))
          return Out;
        continue;
      }
      Stack.push_back(Value::ofI(H.arrayLength(Arr.R)));
      break;
    }
    case BcOp::Add:
    case BcOp::Sub:
    case BcOp::Mul:
    case BcOp::Div:
    case BcOp::Rem:
    case BcOp::Shl:
    case BcOp::Shr:
    case BcOp::Or:
    case BcOp::And:
    case BcOp::Xor: {
      Value B = Pop();
      Value A = Pop();
      bool DivByZero = false;
      Value R = evalArith(I.Op, I.Type, A, B, DivByZero);
      if (DivByZero) {
        if (Raise(RtExceptionKind::ArithmeticDivByZero, Pc, Out))
          return Out;
        continue;
      }
      Stack.push_back(R);
      break;
    }
    case BcOp::Neg: {
      Value A = Pop();
      if (isFloatType(I.Type))
        Stack.push_back(Value::ofF(-A.F));
      else
        Stack.push_back(Value::ofI(normalizeRtInt(I.Type, -A.I)));
      break;
    }
    case BcOp::Cmp: {
      Value B = Pop();
      Value A = Pop();
      Stack.push_back(Value::ofI(compare3(I.Type, A, B)));
      break;
    }
    case BcOp::Conv: {
      Value A = Pop();
      Stack.push_back(convertValue((DataType)I.A, I.Type, A));
      break;
    }
    case BcOp::IfCmp: {
      Value B = Pop();
      Value A = Pop();
      if (testCond((BcCond)I.A, compare3(DataType::Int32, A, B))) {
        Pc = (uint32_t)I.B;
        continue;
      }
      break;
    }
    case BcOp::If: {
      Value A = Pop();
      if (testCond((BcCond)I.A, A.I < 0 ? -1 : (A.I > 0 ? 1 : 0))) {
        Pc = (uint32_t)I.B;
        continue;
      }
      break;
    }
    case BcOp::IfRef: {
      Value A = Pop();
      bool Taken = I.A == 0 ? H.isNull(A.R) : !H.isNull(A.R);
      if (Taken) {
        Pc = (uint32_t)I.B;
        continue;
      }
      break;
    }
    case BcOp::Goto:
      Pc = (uint32_t)I.A;
      continue;
    case BcOp::Call:
    case BcOp::CallVirtual: {
      uint32_t Target = (uint32_t)I.A;
      const MethodInfo &Callee = P.methodAt(Target);
      std::vector<Value> CallArgs(Callee.numArgs());
      for (unsigned K = Callee.numArgs(); K-- > 0;)
        CallArgs[K] = Pop();
      if (I.Op == BcOp::CallVirtual) {
        if (H.isNull(CallArgs[0].R)) {
          if (Raise(RtExceptionKind::NullPointer, Pc, Out))
            return Out;
          continue;
        }
        int32_t DynClass = H.classOf(CallArgs[0].R);
        assert(DynClass >= 0 && "virtual call on a non-object");
        Target = P.resolveVirtual(Target, (uint32_t)DynClass);
      }
      ExecResult R = VM.invoke(Target, std::move(CallArgs), Depth + 1);
      if (R.Exceptional) {
        uint32_t NewPc = 0;
        if (Dispatch(Pc, R.ExcRef, NewPc)) {
          Pc = NewPc;
          continue;
        }
        VM.charge(CM.UnwindPerFrame);
        return R;
      }
      if (P.methodAt(Target).ReturnType != DataType::Void)
        Stack.push_back(R.Ret);
      break;
    }
    case BcOp::Return:
      if (M.ReturnType == DataType::Void)
        return ExecResult::ok(Value());
      return ExecResult::ok(Pop());
    case BcOp::New:
      Stack.push_back(Value::ofR(H.allocObject(P, (uint32_t)I.A)));
      break;
    case BcOp::NewArray: {
      Value Len = Pop();
      if (Len.I < 0) {
        if (Raise(RtExceptionKind::NegativeArraySize, Pc, Out))
          return Out;
        continue;
      }
      VM.charge(CM.AllocArrayPerElem * (double)Len.I);
      Stack.push_back(Value::ofR(H.allocArray(I.Type, (uint32_t)Len.I)));
      break;
    }
    case BcOp::NewMultiArray: {
      unsigned Dims = (unsigned)I.A;
      std::vector<int64_t> Lens(Dims);
      for (unsigned K = Dims; K-- > 0;)
        Lens[K] = Pop().I;
      bool Bad = false;
      for (int64_t L : Lens)
        if (L < 0)
          Bad = true;
      if (Bad) {
        if (Raise(RtExceptionKind::NegativeArraySize, Pc, Out))
          return Out;
        continue;
      }
      // Build nested arrays depth-first.
      auto Build = [&](auto &&Self, unsigned Dim) -> uint32_t {
        uint32_t Len = (uint32_t)Lens[Dim];
        DataType ET = Dim + 1 == Dims ? I.Type : DataType::Address;
        VM.charge(CM.AllocArrayPerElem * (double)Len);
        uint32_t Arr = H.allocArray(ET, Len);
        if (Dim + 1 < Dims)
          for (uint32_t K = 0; K < Len; ++K)
            H.setSlot(Arr, K, Value::ofR(Self(Self, Dim + 1)));
        return Arr;
      };
      Stack.push_back(Value::ofR(Build(Build, 0)));
      break;
    }
    case BcOp::InstanceOf: {
      Value Obj = Pop();
      bool Is = false;
      if (!H.isNull(Obj.R)) {
        int32_t Cls = H.classOf(Obj.R);
        Is = Cls >= 0 && P.isSubclassOf(Cls, I.A);
      }
      Stack.push_back(Value::ofI(Is ? 1 : 0));
      break;
    }
    case BcOp::CheckCast: {
      Value Obj = Pop();
      if (!H.isNull(Obj.R)) {
        int32_t Cls = H.classOf(Obj.R);
        if (Cls < 0 || !P.isSubclassOf(Cls, I.A)) {
          if (Raise(RtExceptionKind::ClassCast, Pc, Out))
            return Out;
          continue;
        }
      }
      Stack.push_back(Obj);
      break;
    }
    case BcOp::MonitorEnter:
    case BcOp::MonitorExit: {
      Value Obj = Pop();
      if (H.isNull(Obj.R)) {
        if (Raise(RtExceptionKind::NullPointer, Pc, Out))
          return Out;
        continue;
      }
      break; // single-threaded: the cost is the semantics
    }
    case BcOp::Throw: {
      Value Obj = Pop();
      if (H.isNull(Obj.R)) {
        if (Raise(RtExceptionKind::NullPointer, Pc, Out))
          return Out;
        continue;
      }
      VM.noteException();
      uint32_t NewPc = 0;
      if (Dispatch(Pc, Obj.R, NewPc)) {
        Pc = NewPc;
        continue;
      }
      VM.charge(CM.UnwindPerFrame);
      return ExecResult::exception(Obj.R);
    }
    case BcOp::ArrayCopy: {
      Value Len = Pop();
      Value DstPos = Pop();
      Value Dst = Pop();
      Value SrcPos = Pop();
      Value Src = Pop();
      if (H.isNull(Src.R) || H.isNull(Dst.R)) {
        if (Raise(RtExceptionKind::NullPointer, Pc, Out))
          return Out;
        continue;
      }
      if (Len.I < 0 || SrcPos.I < 0 || DstPos.I < 0 ||
          (uint64_t)(SrcPos.I + Len.I) > H.arrayLength(Src.R) ||
          (uint64_t)(DstPos.I + Len.I) > H.arrayLength(Dst.R)) {
        if (Raise(RtExceptionKind::ArrayIndexOutOfBounds, Pc, Out))
          return Out;
        continue;
      }
      VM.charge(CM.ArrayCopyPerElem * (double)Len.I);
      for (int64_t K = 0; K < Len.I; ++K)
        H.setSlot(Dst.R, (uint32_t)(DstPos.I + K),
                  H.getSlot(Src.R, (uint32_t)(SrcPos.I + K)));
      break;
    }
    case BcOp::ArrayCmp: {
      Value B = Pop();
      Value A = Pop();
      if (H.isNull(A.R) || H.isNull(B.R)) {
        if (Raise(RtExceptionKind::NullPointer, Pc, Out))
          return Out;
        continue;
      }
      uint32_t LenA = H.arrayLength(A.R), LenB = H.arrayLength(B.R);
      uint32_t N = std::min(LenA, LenB);
      VM.charge(CM.ArrayCmpPerElem * (double)N);
      int64_t Cmp = 0;
      for (uint32_t K = 0; K < N && Cmp == 0; ++K) {
        int64_t X = H.getSlot(A.R, K).I, Y = H.getSlot(B.R, K).I;
        Cmp = X < Y ? -1 : (X > Y ? 1 : 0);
      }
      if (Cmp == 0 && LenA != LenB)
        Cmp = LenA < LenB ? -1 : 1;
      Stack.push_back(Value::ofI(Cmp));
      break;
    }
    case BcOp::Pop:
      Pop();
      break;
    case BcOp::Dup: {
      Value V = Pop();
      Stack.push_back(V);
      Stack.push_back(V);
      break;
    }
    }
    ++Pc;
  }
}
