//===- modifiers/StrategyControl.h - Modifier exploration control -*-C++-*-===//
///
/// \file
/// The "strategy control" component added to the compiler (paper section
/// 4): during data collection it hands out compilation-plan modifiers from
/// per-level queues, retires a modifier after a fixed number of
/// compilations, interleaves the null modifier so the learner sees the
/// original strategy, never gives the same method the same modifier twice,
/// and gracefully stops exploration when every method has been recompiled
/// L times.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_MODIFIERS_STRATEGYCONTROL_H
#define JITML_MODIFIERS_STRATEGYCONTROL_H

#include "modifiers/GuidedSearch.h"
#include "modifiers/Modifier.h"
#include "opt/Plan.h"

#include <map>
#include <set>
#include <vector>

namespace jitml {

/// Exploration search strategy.
enum class SearchStrategy : uint8_t {
  NullOnly = 0, ///< always the null modifier (baseline compiler)
  Randomized,
  Progressive,
  /// Feedback-guided search (the paper's future work): requires the
  /// collection loop to report ranking values via noteOutcome.
  Guided,
};

/// Configuration of a data-collection run.
struct StrategyConfig {
  SearchStrategy Strategy = SearchStrategy::NullOnly;
  /// Modifiers generated per optimization level (the paper's L = 2000;
  /// scaled down by default so bench runs finish quickly).
  unsigned ModifiersPerLevel = 200;
  /// Compilations a modifier serves before retiring (paper: 50).
  unsigned UsesPerModifier = 50;
  /// Maximum recompilations per method before it is frozen (paper: L).
  unsigned MaxRecompilesPerMethod = 200;
  uint64_t Seed = 0x5eed;
};

/// Per-level modifier queue with null-modifier interleaving: every third
/// slot in the rotation is the null modifier.
class ModifierQueue {
public:
  ModifierQueue() = default;
  ModifierQueue(std::vector<PlanModifier> Mods, unsigned UsesPerModifier);

  /// The modifier currently in service; advances the rotation state.
  PlanModifier next();
  /// True when every generated modifier has been retired.
  bool exhausted() const { return Position >= Slots.size(); }
  size_t slotsRemaining() const {
    return Position >= Slots.size() ? 0 : Slots.size() - Position;
  }

private:
  std::vector<PlanModifier> Slots; ///< with null modifiers interleaved
  unsigned UsesPerModifier = 1;
  size_t Position = 0;
  unsigned UsesLeft = 0;
};

/// Drives modifier selection for a whole data-collection run.
class StrategyControl {
public:
  explicit StrategyControl(const StrategyConfig &Config);

  /// Selects the modifier for compiling \p MethodIndex at \p Level. The
  /// same method is never given the same non-null modifier twice; when the
  /// queue would repeat one, it is skipped forward.
  PlanModifier modifierFor(uint32_t MethodIndex, OptLevel Level);

  /// True when \p MethodIndex hit the recompilation cap ("that method is
  /// no longer recompiled while still allowing other methods").
  bool methodFrozen(uint32_t MethodIndex) const;
  void noteRecompile(uint32_t MethodIndex);

  /// True when exploration is over for every level ("the data collection
  /// is gracefully terminated").
  bool explorationExhausted() const;

  /// Guided mode: reports a completed experiment's ranking value (Eq. 2)
  /// so the search can focus on promising regions. No-op otherwise.
  void noteOutcome(OptLevel Level, const PlanModifier &M, double V);

  /// Guided mode introspection (analysis, tests).
  const GuidedSearch &guidedSearch() const { return Guided; }

  const StrategyConfig &config() const { return Config; }

private:
  StrategyConfig Config;
  std::vector<ModifierQueue> Queues; ///< one per optimization level
  GuidedSearch Guided;
  Rng GuidedRng{0};
  /// Guided mode: proposals served per level (bounds the exploration the
  /// same way queue exhaustion bounds the offline strategies).
  uint64_t GuidedServed[NumOptLevels] = {};
  std::map<uint32_t, unsigned> RecompileCount;
  std::map<uint32_t, std::set<uint64_t>> UsedByMethod;
};

} // namespace jitml

#endif // JITML_MODIFIERS_STRATEGYCONTROL_H
