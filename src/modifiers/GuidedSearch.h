//===- modifiers/GuidedSearch.h - Feedback-guided modifier search -*-C++-*-===//
///
/// \file
/// The paper's future work, implemented: "a heuristic-based search that
/// evaluates the performance for modifiers during data collection may
/// focus the search on promising regions within the space of possible
/// modifiers. The implementation of such a search is left for future
/// work." (section 5)
///
/// The heuristic is a per-transformation credit assignment: every
/// completed experiment (modifier, ranking value V from Eq. 2) updates,
/// for each transformation, the running mean of V among experiments that
/// DISABLED it and among those that kept it ENABLED. New modifiers then
/// disable each transformation with a probability proportional to the
/// observed advantage of disabling it, mixed with exploration noise so the
/// search never collapses prematurely.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_MODIFIERS_GUIDEDSEARCH_H
#define JITML_MODIFIERS_GUIDEDSEARCH_H

#include "modifiers/Modifier.h"
#include "opt/Plan.h"

namespace jitml {

class GuidedSearch {
public:
  struct Config {
    /// Baseline disable probability before any feedback arrives.
    double BaseDisableProbability = 0.12;
    /// Fraction of proposals that are pure exploration (randomized).
    double ExplorationRate = 0.25;
    /// Cap on the learned per-bit disable probability.
    double MaxDisableProbability = 0.85;
    /// Observations of a bit required before its estimate is trusted.
    unsigned MinSamplesPerBit = 4;
  };

  GuidedSearch() : GuidedSearch(Config{}) {}
  explicit GuidedSearch(const Config &C) : Cfg(C) {}

  /// Records one completed experiment: modifier \p M achieved ranking
  /// value \p V (smaller is better) at \p Level.
  void noteOutcome(OptLevel Level, const PlanModifier &M, double V);

  /// Proposes the next modifier for \p Level.
  PlanModifier propose(Rng &R, OptLevel Level) const;

  /// Learned disable probability for one transformation (exposed for
  /// analysis and tests).
  double disableProbability(OptLevel Level, TransformationKind K) const;

  uint64_t observations(OptLevel Level) const {
    return PerLevel[(unsigned)Level].Observations;
  }

private:
  struct BitStat {
    double DisabledSum = 0.0;
    uint64_t DisabledCount = 0;
    double EnabledSum = 0.0;
    uint64_t EnabledCount = 0;
  };
  struct LevelState {
    BitStat Bits[NumTransformations];
    uint64_t Observations = 0;
  };

  Config Cfg;
  LevelState PerLevel[NumOptLevels];
};

} // namespace jitml

#endif // JITML_MODIFIERS_GUIDEDSEARCH_H
