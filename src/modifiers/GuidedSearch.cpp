//===- modifiers/GuidedSearch.cpp -----------------------------------------===//

#include "modifiers/GuidedSearch.h"

#include <algorithm>

using namespace jitml;

void GuidedSearch::noteOutcome(OptLevel Level, const PlanModifier &M,
                               double V) {
  LevelState &S = PerLevel[(unsigned)Level];
  ++S.Observations;
  for (unsigned K = 0; K < NumTransformations; ++K) {
    BitStat &B = S.Bits[K];
    if (M.disables((TransformationKind)K)) {
      B.DisabledSum += V;
      ++B.DisabledCount;
    } else {
      B.EnabledSum += V;
      ++B.EnabledCount;
    }
  }
}

double GuidedSearch::disableProbability(OptLevel Level,
                                        TransformationKind K) const {
  const BitStat &B = PerLevel[(unsigned)Level].Bits[(unsigned)K];
  if (B.DisabledCount < Cfg.MinSamplesPerBit ||
      B.EnabledCount < Cfg.MinSamplesPerBit)
    return Cfg.BaseDisableProbability;
  double MeanDisabled = B.DisabledSum / (double)B.DisabledCount;
  double MeanEnabled = B.EnabledSum / (double)B.EnabledCount;
  if (MeanEnabled <= 0.0)
    return Cfg.BaseDisableProbability;
  // Relative advantage of disabling: positive when experiments that
  // disabled this transformation ranked better (smaller V).
  double Advantage = (MeanEnabled - MeanDisabled) / MeanEnabled;
  double P = Cfg.BaseDisableProbability + Advantage;
  return std::clamp(P, 0.02, Cfg.MaxDisableProbability);
}

PlanModifier GuidedSearch::propose(Rng &R, OptLevel Level) const {
  PlanModifier M;
  // Exploration: an unbiased randomized probe keeps the statistics for
  // rarely-disabled bits flowing.
  if (R.nextBool(Cfg.ExplorationRate)) {
    for (unsigned K = 0; K < NumTransformations; ++K)
      if (R.nextBool(0.35))
        M.disable((TransformationKind)K);
    return M;
  }
  for (unsigned K = 0; K < NumTransformations; ++K)
    if (R.nextBool(disableProbability(Level, (TransformationKind)K)))
      M.disable((TransformationKind)K);
  return M;
}
