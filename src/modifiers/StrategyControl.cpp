//===- modifiers/StrategyControl.cpp --------------------------------------===//

#include "modifiers/StrategyControl.h"

using namespace jitml;

std::vector<PlanModifier>
jitml::generateRandomizedModifiers(Rng &R, unsigned Count,
                                   double DisableProbability) {
  std::vector<PlanModifier> Out;
  Out.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    PlanModifier M;
    for (unsigned K = 0; K < NumTransformations; ++K)
      if (R.nextBool(DisableProbability))
        M.disable((TransformationKind)K);
    Out.push_back(M);
  }
  return Out;
}

std::vector<PlanModifier> jitml::generateProgressiveModifiers(Rng &R,
                                                              unsigned L) {
  assert(L > 0 && "progressive search needs at least one step");
  std::vector<PlanModifier> Out;
  Out.reserve(L + 1);
  for (unsigned I = 0; I <= L; ++I) {
    // Eq. 1: D_i = i * 0.25 / L, from 0 (null) to 0.25.
    double D = (double)I * 0.25 / (double)L;
    PlanModifier M;
    for (unsigned K = 0; K < NumTransformations; ++K)
      if (R.nextBool(D))
        M.disable((TransformationKind)K);
    Out.push_back(M);
  }
  return Out;
}

ModifierQueue::ModifierQueue(std::vector<PlanModifier> Mods,
                             unsigned UsesPerModifier)
    : UsesPerModifier(UsesPerModifier) {
  assert(UsesPerModifier > 0 && "modifiers must serve at least once");
  // "The third modifier used is always the null modifier": interleave a
  // null slot after every two generated modifiers.
  unsigned SinceNull = 0;
  for (const PlanModifier &M : Mods) {
    Slots.push_back(M);
    if (++SinceNull == 2) {
      Slots.push_back(PlanModifier());
      SinceNull = 0;
    }
  }
  UsesLeft = Slots.empty() ? 0 : UsesPerModifier;
}

PlanModifier ModifierQueue::next() {
  if (exhausted())
    return PlanModifier(); // exploration over: fall back to the null plan
  PlanModifier Current = Slots[Position];
  if (--UsesLeft == 0) {
    ++Position;
    UsesLeft = UsesPerModifier;
  }
  return Current;
}

StrategyControl::StrategyControl(const StrategyConfig &Config)
    : Config(Config), GuidedRng(mix64(Config.Seed ^ 0x9d1d)) {
  Queues.resize(NumOptLevels);
  if (Config.Strategy == SearchStrategy::NullOnly ||
      Config.Strategy == SearchStrategy::Guided)
    return;
  for (unsigned Level = 0; Level < NumOptLevels; ++Level) {
    Rng R(mix64(Config.Seed ^ (0x1000 + Level)));
    std::vector<PlanModifier> Mods =
        Config.Strategy == SearchStrategy::Randomized
            ? generateRandomizedModifiers(R, Config.ModifiersPerLevel)
            : generateProgressiveModifiers(R, Config.ModifiersPerLevel);
    Queues[Level] = ModifierQueue(std::move(Mods), Config.UsesPerModifier);
  }
}

PlanModifier StrategyControl::modifierFor(uint32_t MethodIndex,
                                          OptLevel Level) {
  if (Config.Strategy == SearchStrategy::NullOnly)
    return PlanModifier();
  if (Config.Strategy == SearchStrategy::Guided) {
    uint64_t &Served = GuidedServed[(unsigned)Level];
    // Same budget shape as the queues: ModifiersPerLevel slots with the
    // null modifier interleaved every third proposal.
    if (Served >= (uint64_t)Config.ModifiersPerLevel *
                      Config.UsesPerModifier * 3 / 2)
      return PlanModifier();
    ++Served;
    if (Served % 3 == 0)
      return PlanModifier();
    std::set<uint64_t> &Used = UsedByMethod[MethodIndex];
    for (unsigned Attempts = 0; Attempts < 8; ++Attempts) {
      PlanModifier M = Guided.propose(GuidedRng, Level);
      if (M.isNull() || Used.insert(M.raw()).second)
        return M;
    }
    return PlanModifier();
  }
  ModifierQueue &Q = Queues[(unsigned)Level];
  std::set<uint64_t> &Used = UsedByMethod[MethodIndex];
  // "The method is never compiled twice with the same modifier" — the null
  // modifier is exempt ("tried with every compiled method").
  for (unsigned Attempts = 0; Attempts < 8; ++Attempts) {
    PlanModifier M = Q.next();
    if (M.isNull() || Used.insert(M.raw()).second)
      return M;
  }
  return PlanModifier();
}

bool StrategyControl::methodFrozen(uint32_t MethodIndex) const {
  auto It = RecompileCount.find(MethodIndex);
  return It != RecompileCount.end() &&
         It->second >= Config.MaxRecompilesPerMethod;
}

void StrategyControl::noteRecompile(uint32_t MethodIndex) {
  ++RecompileCount[MethodIndex];
}

bool StrategyControl::explorationExhausted() const {
  if (Config.Strategy == SearchStrategy::NullOnly)
    return false;
  if (Config.Strategy == SearchStrategy::Guided) {
    uint64_t Budget = (uint64_t)Config.ModifiersPerLevel *
                      Config.UsesPerModifier * 3 / 2;
    for (uint64_t Served : GuidedServed)
      if (Served < Budget)
        return false;
    return true;
  }
  for (const ModifierQueue &Q : Queues)
    if (!Q.exhausted())
      return false;
  return true;
}

void StrategyControl::noteOutcome(OptLevel Level, const PlanModifier &M,
                                  double V) {
  if (Config.Strategy == SearchStrategy::Guided)
    Guided.noteOutcome(Level, M, V);
}
