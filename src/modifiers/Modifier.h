//===- modifiers/Modifier.h - Compilation-plan modifiers --------*- C++ -*-===//
///
/// \file
/// "A compilation-plan modifier is a sequence of bits. Each bit determines
/// whether a code transformation is enabled. ... transformations may be
/// removed from the original compilation plan but no transformations are
/// added and transformations are not reordered." (paper section 5)
///
/// The two generation strategies are implemented here:
///  * pure randomized search with aggressive exploration, and
///  * progressive randomized search, where the probability that the i-th
///    modifier disables any given transformation is D_i = i * 0.25 / L
///    (Eq. 1), evolving from the null modifier to 25% disabled.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_MODIFIERS_MODIFIER_H
#define JITML_MODIFIERS_MODIFIER_H

#include "opt/Transformation.h"
#include "support/Rng.h"

#include <vector>

namespace jitml {

/// A compilation-plan modifier: one bit per controllable transformation;
/// a set bit means the transformation stays ENABLED. The null modifier has
/// every bit set and leaves the original Testarossa-style plan untouched.
class PlanModifier {
public:
  /// The null modifier: "does not change the original compilation plan".
  PlanModifier() : Enabled(BitSet64::allOne(NumTransformations)) {}
  explicit PlanModifier(BitSet64 EnabledBits) : Enabled(EnabledBits) {
    assert(EnabledBits.width() == NumTransformations &&
           "modifier must cover all 58 transformations");
  }
  /// Rebuilds a modifier from its raw 58-bit pattern (archive decoding,
  /// model label lookup).
  static PlanModifier fromRaw(uint64_t Bits) {
    return PlanModifier(BitSet64(NumTransformations, Bits));
  }

  bool isNull() const {
    return Enabled == BitSet64::allOne(NumTransformations);
  }
  bool disables(TransformationKind K) const {
    return !Enabled.test((unsigned)K);
  }
  void disable(TransformationKind K) { Enabled.reset((unsigned)K); }
  unsigned numDisabled() const {
    return NumTransformations - Enabled.popCount();
  }

  const BitSet64 &enabledMask() const { return Enabled; }
  uint64_t raw() const { return Enabled.raw(); }

  friend bool operator==(const PlanModifier &A, const PlanModifier &B) {
    return A.Enabled == B.Enabled;
  }
  friend bool operator!=(const PlanModifier &A, const PlanModifier &B) {
    return !(A == B);
  }
  friend bool operator<(const PlanModifier &A, const PlanModifier &B) {
    return A.Enabled < B.Enabled;
  }

private:
  BitSet64 Enabled;
};

/// Pure randomized search: every transformation is independently disabled
/// with probability \p DisableProbability (default: aggressive 0.5).
std::vector<PlanModifier>
generateRandomizedModifiers(Rng &R, unsigned Count,
                            double DisableProbability = 0.5);

/// Progressive randomized search (Eq. 1): returns L+1 modifiers where the
/// i-th disables each transformation with probability i * 0.25 / L. The
/// 0-th is the null modifier.
std::vector<PlanModifier> generateProgressiveModifiers(Rng &R, unsigned L);

} // namespace jitml

#endif // JITML_MODIFIERS_MODIFIER_H
