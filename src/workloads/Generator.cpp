//===- workloads/Generator.cpp - Synthetic benchmark generator ------------===//
//
// Deterministically synthesizes benchmark programs from WorkloadSpecs.
// Each kernel archetype exercises a distinct slice of the optimizer —
// which is precisely what gives the learned models signal: the best
// modifier for an FP kernel differs from the best modifier for an
// allocation-heavy transaction method.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "bytecode/Builder.h"
#include "bytecode/Verifier.h"
#include "runtime/VirtualMachine.h"
#include "support/Rng.h"

#include <cassert>

using namespace jitml;

namespace {

/// Builds one benchmark program.
class WorkloadBuilder {
public:
  explicit WorkloadBuilder(const WorkloadSpec &Spec)
      : Spec(Spec), R(mix64(Spec.Seed ^ 0xbe9cu)) {}

  Program build();

private:
  // Class setup.
  void makeClasses();

  // Kernel archetypes; each returns the new method index.
  uint32_t addIntKernel(unsigned Index);
  uint32_t addFpKernel(unsigned Index);
  uint32_t addObjectKernel(unsigned Index);
  uint32_t addArrayKernel(unsigned Index);
  uint32_t addBranchKernel(unsigned Index);
  uint32_t addDecimalKernel(unsigned Index);
  uint32_t addVirtualKernel(unsigned Index);
  uint32_t addLongDoubleKernel(unsigned Index);

  // Small leaf helpers (inlining targets).
  void addHelpers();

  uint32_t addDriver(const std::vector<uint32_t> &IntReturningKernels,
                     const std::vector<uint32_t> &FpReturningKernels);

  /// Random method flags: mostly public, some final/protected, rare
  /// synchronized.
  uint32_t randomFlags(bool AllowSynchronized) {
    uint32_t Flags = MF_Static | MF_Public;
    if (R.nextBool(0.3))
      Flags |= MF_Final;
    if (R.nextBool(0.1)) {
      Flags &= ~MF_Public;
      Flags |= MF_Protected;
    }
    if (AllowSynchronized && R.nextBool(0.12))
      Flags |= MF_Synchronized;
    return Flags;
  }

  int64_t oddConst(int64_t Lo, int64_t Hi) {
    int64_t V = R.nextInRange(Lo, Hi);
    return V | 1;
  }

  const WorkloadSpec &Spec;
  Rng R;
  Program P;

  // Shared program structure.
  int32_t RecordClass = -1;   ///< plain data holder (3-5 int fields)
  int32_t ShapeClass = -1;    ///< virtual-dispatch base
  int32_t SphereClass = -1;   ///< Shape subclass
  int32_t BoxClass = -1;      ///< Shape subclass
  int32_t ErrorClass = -1;    ///< application exception type
  int32_t UnsafeClass = -1;   ///< sun.misc.Unsafe stand-in
  int32_t DecimalClass = -1;  ///< java.math.BigDecimal stand-in
  uint32_t ShapeCalc = 0;     ///< Shape.calc(this, int) int [virtual base]
  uint32_t UnsafeProbe = 0;   ///< Unsafe.probe(int) int
  uint32_t BigDecScale = 0;   ///< BigDecimal.scale(long) long
  uint32_t HelperMix = 0;     ///< mix(int, int) int
  uint32_t HelperClampF = 0;  ///< clampF(double) double
  uint32_t RecordFieldCount = 0;
};

void WorkloadBuilder::makeClasses() {
  {
    ClassBuilder CB(P, "Record");
    RecordFieldCount = 3 + (uint32_t)R.nextBelow(3);
    for (uint32_t I = 0; I < RecordFieldCount; ++I)
      CB.addField(DataType::Int32);
    RecordClass = (int32_t)CB.finish();
  }
  {
    ClassBuilder CB(P, "AppError");
    CB.addField(DataType::Int32); // error code
    ErrorClass = (int32_t)CB.finish();
  }
  {
    ClassBuilder CB(P, "Shape");
    CB.addField(DataType::Int32);
    ShapeClass = (int32_t)CB.finish();
  }
  {
    ClassBuilder CB(P, "Sphere", ShapeClass);
    SphereClass = (int32_t)CB.finish();
  }
  {
    ClassBuilder CB(P, "Box", ShapeClass);
    BoxClass = (int32_t)CB.finish();
  }
  {
    ClassBuilder CB(P, "UnsafeIntrinsics", -1, ClassKind::UnsafeIntrinsic);
    UnsafeClass = (int32_t)CB.finish();
  }
  {
    ClassBuilder CB(P, "BigDecimalOps", -1, ClassKind::BigDecimal);
    DecimalClass = (int32_t)CB.finish();
  }

  // Shape.calc: base implementation `field * 3 + x`.
  {
    MethodBuilder MB(P, "calc", ShapeClass, MF_Public,
                     {DataType::Object, DataType::Int32}, DataType::Int32);
    MB.load(0).getField(0, DataType::Int32);
    MB.constI(DataType::Int32, 3).binop(BcOp::Mul, DataType::Int32);
    MB.load(1).binop(BcOp::Add, DataType::Int32);
    MB.retValue(DataType::Int32);
    ShapeCalc = MB.finish();
  }
  // Sphere.calc: `(field + x) * 5`.
  {
    MethodBuilder MB(P, "calc", SphereClass, MF_Public,
                     {DataType::Object, DataType::Int32}, DataType::Int32);
    MB.load(0).getField(0, DataType::Int32);
    MB.load(1).binop(BcOp::Add, DataType::Int32);
    MB.constI(DataType::Int32, 5).binop(BcOp::Mul, DataType::Int32);
    MB.retValue(DataType::Int32);
    MB.finish();
  }
  // Box.calc: `field ^ (x << 2)`.
  {
    MethodBuilder MB(P, "calc", BoxClass, MF_Public,
                     {DataType::Object, DataType::Int32}, DataType::Int32);
    MB.load(0).getField(0, DataType::Int32);
    MB.load(1).constI(DataType::Int32, 2).binop(BcOp::Shl, DataType::Int32);
    MB.binop(BcOp::Xor, DataType::Int32);
    MB.retValue(DataType::Int32);
    MB.finish();
  }
  // Unsafe.probe(x): a cheap mixing function; calling it marks callers as
  // unsafe-symbol users (Table 1), which disables redundant-load
  // elimination for them.
  {
    MethodBuilder MB(P, "probe", UnsafeClass, MF_Static | MF_Public,
                     {DataType::Int32}, DataType::Int32);
    MB.load(0).constI(DataType::Int32, 0x9e37).binop(BcOp::Xor,
                                                     DataType::Int32);
    MB.constI(DataType::Int32, 13).binop(BcOp::Shl, DataType::Int32);
    MB.load(0).binop(BcOp::Or, DataType::Int32);
    MB.retValue(DataType::Int32);
    UnsafeProbe = MB.finish();
  }
  // BigDecimal.scale(v): arbitrary-precision flavored fixed-point math.
  {
    MethodBuilder MB(P, "scale", DecimalClass, MF_Static | MF_Public,
                     {DataType::Int64}, DataType::Int64);
    MB.load(0).constI(DataType::Int64, 10000).binop(BcOp::Mul,
                                                    DataType::Int64);
    MB.constI(DataType::Int64, 9973).binop(BcOp::Div, DataType::Int64);
    MB.retValue(DataType::Int64);
    BigDecScale = MB.finish();
  }
}

void WorkloadBuilder::addHelpers() {
  {
    MethodBuilder MB(P, "mix", -1, MF_Static | MF_Public | MF_Final,
                     {DataType::Int32, DataType::Int32}, DataType::Int32);
    MB.load(0).constI(DataType::Int32, 31).binop(BcOp::Mul, DataType::Int32);
    MB.load(1).binop(BcOp::Xor, DataType::Int32);
    MB.constI(DataType::Int32, 7).binop(BcOp::Add, DataType::Int32);
    MB.retValue(DataType::Int32);
    HelperMix = MB.finish();
  }
  {
    MethodBuilder MB(P, "clampF", -1, MF_Static | MF_Public | MF_Final,
                     {DataType::Double}, DataType::Double);
    auto Big = MB.newLabel();
    MB.load(0).constF(DataType::Double, 1e9).cmp(DataType::Double);
    MB.ifZero(BcCond::Gt, Big);
    MB.load(0).retValue(DataType::Double);
    MB.place(Big);
    MB.constF(DataType::Double, 1e9).retValue(DataType::Double);
    HelperClampF = MB.finish();
  }
}

uint32_t WorkloadBuilder::addIntKernel(unsigned Index) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "intKernel%u", Index);
  bool UsesUnsafe = R.nextBelow(1000) < Spec.UnsafePerMille;
  MethodBuilder MB(P, Name, -1, randomFlags(false), {DataType::Int32},
                   DataType::Int32);
  uint32_t Acc = MB.addLocal(DataType::Int32);
  uint32_t Arr = MB.addLocal(DataType::Address);
  uint32_t I = MB.addLocal(DataType::Int32);

  // Trip counts divisible by 4 make factor unrolling applicable.
  int64_t Len = (int64_t)(8 + R.nextBelow(Spec.WorkScale)) * 4;
  int64_t C1 = oddConst(3, 17);
  int64_t C2 = oddConst(5, 63);
  int64_t Pow2 = 1ll << (2 + (int)R.nextBelow(4));

  MB.load(0).store(Acc);
  MB.constI(DataType::Int32, Len).newArray(DataType::Int32).store(Arr);

  // Fill: arr[i] = i * C1 + acc  (loop strength reduction target).
  {
    auto Head = MB.newLabel();
    auto Exit = MB.newLabel();
    MB.constI(DataType::Int32, 0).store(I);
    MB.place(Head);
    MB.load(I).constI(DataType::Int32, Len).ifCmp(BcCond::Ge, Exit);
    MB.load(Arr).load(I);
    MB.load(I).constI(DataType::Int32, C1).binop(BcOp::Mul, DataType::Int32);
    MB.load(Acc).binop(BcOp::Add, DataType::Int32);
    MB.astore(DataType::Int32);
    MB.inc(I, 1);
    MB.gotoLabel(Head);
    MB.place(Exit);
  }
  // Reduce with redundant loads and power-of-two strength patterns:
  // acc += (arr[i] * Pow2) ^ (arr[i] & C2).
  {
    auto Head = MB.newLabel();
    auto Exit = MB.newLabel();
    MB.constI(DataType::Int32, 0).store(I);
    MB.place(Head);
    MB.load(I).constI(DataType::Int32, Len).ifCmp(BcCond::Ge, Exit);
    MB.load(Acc);
    MB.load(Arr).load(I).aload(DataType::Int32);
    MB.constI(DataType::Int32, Pow2).binop(BcOp::Mul, DataType::Int32);
    MB.load(Arr).load(I).aload(DataType::Int32);
    MB.constI(DataType::Int32, C2).binop(BcOp::And, DataType::Int32);
    MB.binop(BcOp::Xor, DataType::Int32);
    MB.binop(BcOp::Add, DataType::Int32).store(Acc);
    MB.inc(I, 1);
    MB.gotoLabel(Head);
    MB.place(Exit);
  }
  if (UsesUnsafe) {
    MB.load(Acc).call(UnsafeProbe).store(Acc);
  }
  MB.load(Acc).load(0).call(HelperMix).retValue(DataType::Int32);
  return MB.finish();
}

uint32_t WorkloadBuilder::addFpKernel(unsigned Index) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "fpKernel%u", Index);
  uint32_t Flags = randomFlags(false);
  if (Spec.StrictFpMethods && R.nextBool(0.4))
    Flags |= MF_StrictFP;
  MethodBuilder MB(P, Name, -1, Flags, {DataType::Double}, DataType::Double);
  uint32_t D = MB.addLocal(DataType::Double);
  uint32_t I = MB.addLocal(DataType::Int32);
  int64_t Trips = (int64_t)(6 + R.nextBelow(Spec.WorkScale)) * 2;
  double Scale = 1.0 + (double)R.nextBelow(100) / 10000.0;
  double Div = 2.0 + (double)R.nextBelow(30); // FP strength reduction bait

  MB.load(0).store(D);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).constI(DataType::Int32, Trips).ifCmp(BcCond::Ge, Exit);
  // d = d * Scale + i / Div  (mul, int->double conv, div-by-const).
  MB.load(D).constF(DataType::Double, Scale).binop(BcOp::Mul,
                                                   DataType::Double);
  MB.load(I).conv(DataType::Int32, DataType::Double);
  MB.constF(DataType::Double, Div).binop(BcOp::Div, DataType::Double);
  MB.binop(BcOp::Add, DataType::Double).store(D);
  // Narrow/widen round trip (conversion cleanup bait).
  if (Index % 2 == 0) {
    MB.load(D).conv(DataType::Double, DataType::Float);
    MB.conv(DataType::Float, DataType::Double).store(D);
  }
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(D).call(HelperClampF).retValue(DataType::Double);
  return MB.finish();
}

uint32_t WorkloadBuilder::addObjectKernel(unsigned Index) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "objKernel%u", Index);
  bool UsesBigDec = R.nextBelow(1000) < Spec.BigDecimalPerMille;
  bool Escaping = R.nextBool(0.35); // some objects escape via a global
  MethodBuilder MB(P, Name, -1, randomFlags(true), {DataType::Int32},
                   DataType::Int32);
  uint32_t Acc = MB.addLocal(DataType::Int32);
  uint32_t Rec = MB.addLocal(DataType::Object);
  uint32_t I = MB.addLocal(DataType::Int32);
  int64_t Trips = 4 + (int64_t)R.nextBelow(Spec.WorkScale);
  uint32_t EscapeSlot =
      Escaping ? P.addGlobal(DataType::Object) : UINT32_MAX;

  MB.load(0).store(Acc);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).constI(DataType::Int32, Trips).ifCmp(BcCond::Ge, Exit);
  // rec = new Record; rec.f0 = i; rec.f1 = i * 3;
  MB.newObject((uint32_t)RecordClass).store(Rec);
  MB.load(Rec).load(I).putField(0, DataType::Int32);
  MB.load(Rec);
  MB.load(I).constI(DataType::Int32, 3).binop(BcOp::Mul, DataType::Int32);
  MB.putField(1, DataType::Int32);
  // Synchronized access to the (usually non-escaping) record: monitor
  // elision bait.
  MB.load(Rec).monitorEnter();
  MB.load(Acc);
  MB.load(Rec).getField(0, DataType::Int32);
  MB.load(Rec).getField(1, DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32).store(Acc);
  MB.load(Rec).monitorExit();
  if (Escaping) {
    MB.load(Rec).putGlobal(EscapeSlot, DataType::Object);
  }
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  if (UsesBigDec) {
    MB.load(Acc).conv(DataType::Int32, DataType::Int64);
    MB.call(BigDecScale);
    MB.conv(DataType::Int64, DataType::Int32).store(Acc);
  }
  MB.load(Acc).retValue(DataType::Int32);
  return MB.finish();
}

uint32_t WorkloadBuilder::addArrayKernel(unsigned Index) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "arrKernel%u", Index);
  MethodBuilder MB(P, Name, -1, randomFlags(false), {DataType::Int32},
                   DataType::Int32);
  uint32_t Acc = MB.addLocal(DataType::Int32);
  uint32_t Src = MB.addLocal(DataType::Address);
  uint32_t Dst = MB.addLocal(DataType::Address);
  uint32_t I = MB.addLocal(DataType::Int32);
  int64_t Len = (int64_t)(10 + R.nextBelow(Spec.WorkScale)) * 2;

  MB.load(0).store(Acc);
  MB.constI(DataType::Int32, Len).newArray(DataType::Int32).store(Src);
  MB.constI(DataType::Int32, Len).newArray(DataType::Int32).store(Dst);
  // Fill source.
  {
    auto Head = MB.newLabel();
    auto Exit = MB.newLabel();
    MB.constI(DataType::Int32, 0).store(I);
    MB.place(Head);
    MB.load(I).constI(DataType::Int32, Len).ifCmp(BcCond::Ge, Exit);
    MB.load(Src).load(I);
    MB.load(I).load(Acc).binop(BcOp::Xor, DataType::Int32);
    MB.astore(DataType::Int32);
    MB.inc(I, 1);
    MB.gotoLabel(Head);
    MB.place(Exit);
  }
  // Element-copy loop (arraycopy idiom recognition bait).
  {
    auto Head = MB.newLabel();
    auto Exit = MB.newLabel();
    MB.constI(DataType::Int32, 0).store(I);
    MB.place(Head);
    MB.load(I).constI(DataType::Int32, Len).ifCmp(BcCond::Ge, Exit);
    MB.load(Dst).load(I);
    MB.load(Src).load(I).aload(DataType::Int32);
    MB.astore(DataType::Int32);
    MB.inc(I, 1);
    MB.gotoLabel(Head);
    MB.place(Exit);
  }
  // Scan bounded by src.length (loop bounds versioning bait).
  {
    auto Head = MB.newLabel();
    auto Exit = MB.newLabel();
    MB.constI(DataType::Int32, 0).store(I);
    MB.place(Head);
    MB.load(I).load(Src).arrayLen().ifCmp(BcCond::Ge, Exit);
    MB.load(Acc);
    MB.load(Src).load(I).aload(DataType::Int32);
    MB.binop(BcOp::Add, DataType::Int32).store(Acc);
    MB.inc(I, 1);
    MB.gotoLabel(Head);
    MB.place(Exit);
  }
  MB.load(Src).load(Dst).arrayCmp();
  MB.load(Acc).binop(BcOp::Add, DataType::Int32).retValue(DataType::Int32);
  return MB.finish();
}

uint32_t WorkloadBuilder::addBranchKernel(unsigned Index) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "brKernel%u", Index);
  MethodBuilder MB(P, Name, -1, randomFlags(false), {DataType::Int32},
                   DataType::Int32);
  uint32_t Acc = MB.addLocal(DataType::Int32);
  uint32_t X = MB.addLocal(DataType::Int32);
  uint32_t I = MB.addLocal(DataType::Int32);
  int64_t Trips = 6 + (int64_t)R.nextBelow(Spec.WorkScale);
  int64_t ThrowMod = 7 + (int64_t)R.nextBelow(9);

  MB.load(0).store(Acc);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  auto Handler = MB.newLabel();
  auto Join = MB.newLabel();
  auto Odd = MB.newLabel();
  auto AfterBranch = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).constI(DataType::Int32, Trips).ifCmp(BcCond::Ge, Exit);
  // x = mix(acc, i); branchy accumulation.
  MB.load(Acc).load(I).call(HelperMix).store(X);
  MB.load(X).constI(DataType::Int32, 1).binop(BcOp::And, DataType::Int32);
  MB.ifZero(BcCond::Ne, Odd);
  MB.load(Acc).load(X).binop(BcOp::Add, DataType::Int32).store(Acc);
  MB.gotoLabel(AfterBranch);
  MB.place(Odd);
  MB.load(Acc).load(X).binop(BcOp::Xor, DataType::Int32).store(Acc);
  MB.place(AfterBranch);
  // Exceptional path: if (x % ThrowMod == 0) throw new AppError.
  {
    uint32_t TryStart = MB.beginTry();
    auto NoThrow = MB.newLabel();
    MB.load(X).constI(DataType::Int32, ThrowMod)
        .binop(BcOp::Rem, DataType::Int32);
    MB.ifZero(BcCond::Ne, NoThrow);
    MB.newObject((uint32_t)ErrorClass).throwRef();
    MB.place(NoThrow);
    MB.load(Acc).constI(DataType::Int32, 1).binop(BcOp::Add,
                                                  DataType::Int32);
    MB.store(Acc);
    MB.endTry(TryStart, Handler, ErrorClass);
    MB.gotoLabel(Join);
  }
  MB.place(Handler);
  MB.pop(DataType::Object); // discard the exception object
  MB.load(Acc).constI(DataType::Int32, 3).binop(BcOp::Sub, DataType::Int32);
  MB.store(Acc);
  MB.place(Join);
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(Acc).retValue(DataType::Int32);
  return MB.finish();
}

uint32_t WorkloadBuilder::addDecimalKernel(unsigned Index) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "bcdKernel%u", Index);
  MethodBuilder MB(P, Name, -1, randomFlags(false), {DataType::Int32},
                   DataType::Int32);
  uint32_t Acc = MB.addLocal(DataType::PackedDecimal);
  uint32_t I = MB.addLocal(DataType::Int32);
  int64_t Trips = 4 + (int64_t)R.nextBelow(Spec.WorkScale / 2 + 2);
  int64_t Rate = oddConst(3, 9);

  MB.load(0).conv(DataType::Int32, DataType::PackedDecimal).store(Acc);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).constI(DataType::Int32, Trips).ifCmp(BcCond::Ge, Exit);
  // acc = acc * rate + i  in packed decimal, with a zoned round trip
  // (BCD simplification bait).
  MB.load(Acc).constI(DataType::PackedDecimal, Rate)
      .binop(BcOp::Mul, DataType::PackedDecimal);
  MB.load(I).conv(DataType::Int32, DataType::PackedDecimal);
  MB.binop(BcOp::Add, DataType::PackedDecimal);
  MB.conv(DataType::PackedDecimal, DataType::ZonedDecimal);
  MB.conv(DataType::ZonedDecimal, DataType::PackedDecimal);
  MB.constI(DataType::PackedDecimal, 1000003)
      .binop(BcOp::Rem, DataType::PackedDecimal);
  MB.store(Acc);
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(Acc).conv(DataType::PackedDecimal, DataType::Int32)
      .retValue(DataType::Int32);
  return MB.finish();
}

uint32_t WorkloadBuilder::addVirtualKernel(unsigned Index) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "virtKernel%u", Index);
  MethodBuilder MB(P, Name, -1, randomFlags(false), {DataType::Int32},
                   DataType::Int32);
  uint32_t Acc = MB.addLocal(DataType::Int32);
  uint32_t Obj = MB.addLocal(DataType::Object);
  uint32_t I = MB.addLocal(DataType::Int32);
  int64_t Trips = 5 + (int64_t)R.nextBelow(Spec.WorkScale);

  MB.load(0).store(Acc);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).constI(DataType::Int32, Trips).ifCmp(BcCond::Ge, Exit);
  if (Spec.PolymorphicDispatch) {
    auto UseBox = MB.newLabel();
    auto Made = MB.newLabel();
    MB.load(I).constI(DataType::Int32, 1).binop(BcOp::And, DataType::Int32);
    MB.ifZero(BcCond::Ne, UseBox);
    MB.newObject((uint32_t)SphereClass).store(Obj);
    MB.gotoLabel(Made);
    MB.place(UseBox);
    MB.newObject((uint32_t)BoxClass).store(Obj);
    MB.place(Made);
  } else {
    MB.newObject((uint32_t)SphereClass).store(Obj);
  }
  MB.load(Obj).load(I).putField(0, DataType::Int32);
  MB.load(Acc);
  MB.load(Obj).load(I).callVirtual(ShapeCalc);
  MB.binop(BcOp::Add, DataType::Int32).store(Acc);
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(Acc).retValue(DataType::Int32);
  return MB.finish();
}

uint32_t WorkloadBuilder::addLongDoubleKernel(unsigned Index) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "ldKernel%u", Index);
  MethodBuilder MB(P, Name, -1, randomFlags(false), {DataType::Double},
                   DataType::Double);
  uint32_t D = MB.addLocal(DataType::LongDouble);
  uint32_t I = MB.addLocal(DataType::Int32);
  int64_t Trips = 4 + (int64_t)R.nextBelow(Spec.WorkScale / 2 + 2);

  MB.load(0).conv(DataType::Double, DataType::LongDouble).store(D);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).constI(DataType::Int32, Trips).ifCmp(BcCond::Ge, Exit);
  // Quad-precision multiply-add whose operands are widened doubles
  // (long-double fast-path bait).
  MB.load(D).conv(DataType::LongDouble, DataType::Double);
  MB.conv(DataType::Double, DataType::LongDouble);
  MB.constF(DataType::Double, 1.0001).conv(DataType::Double,
                                           DataType::LongDouble);
  MB.binop(BcOp::Mul, DataType::LongDouble);
  MB.store(D);
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(D).conv(DataType::LongDouble, DataType::Double)
      .retValue(DataType::Double);
  return MB.finish();
}

uint32_t
WorkloadBuilder::addDriver(const std::vector<uint32_t> &IntKernels,
                           const std::vector<uint32_t> &FpKernels) {
  MethodBuilder MB(P, "main", -1, MF_Static | MF_Public, {DataType::Int32},
                   DataType::Int32);
  uint32_t Acc = MB.addLocal(DataType::Int32);
  uint32_t J = MB.addLocal(DataType::Int32);
  MB.load(0).constI(DataType::Int32, 1).binop(BcOp::Add, DataType::Int32);
  MB.store(Acc);
  // Each kernel is invoked CallsPerKernel times per application iteration,
  // feeding the accumulator through so results chain.
  for (uint32_t Kernel : IntKernels) {
    auto Head = MB.newLabel();
    auto Exit = MB.newLabel();
    MB.constI(DataType::Int32, 0).store(J);
    MB.place(Head);
    MB.load(J).constI(DataType::Int32, (int64_t)Spec.Mix.CallsPerKernel)
        .ifCmp(BcCond::Ge, Exit);
    // acc = (acc & 0xffff) + kernel(acc & 0xff + j)
    MB.load(Acc).constI(DataType::Int32, 0xffff)
        .binop(BcOp::And, DataType::Int32);
    MB.load(Acc).constI(DataType::Int32, 0xff)
        .binop(BcOp::And, DataType::Int32);
    MB.load(J).binop(BcOp::Add, DataType::Int32);
    MB.call(Kernel);
    MB.binop(BcOp::Add, DataType::Int32).store(Acc);
    MB.inc(J, 1);
    MB.gotoLabel(Head);
    MB.place(Exit);
  }
  for (uint32_t Kernel : FpKernels) {
    auto Head = MB.newLabel();
    auto Exit = MB.newLabel();
    MB.constI(DataType::Int32, 0).store(J);
    MB.place(Head);
    MB.load(J).constI(DataType::Int32, (int64_t)Spec.Mix.CallsPerKernel)
        .ifCmp(BcCond::Ge, Exit);
    MB.load(Acc);
    MB.load(Acc).constI(DataType::Int32, 0x3f)
        .binop(BcOp::And, DataType::Int32);
    MB.load(J).binop(BcOp::Add, DataType::Int32);
    MB.conv(DataType::Int32, DataType::Double);
    MB.call(Kernel);
    MB.conv(DataType::Double, DataType::Int32);
    MB.constI(DataType::Int32, 0xffffff)
        .binop(BcOp::And, DataType::Int32);
    MB.binop(BcOp::Add, DataType::Int32).store(Acc);
    MB.inc(J, 1);
    MB.gotoLabel(Head);
    MB.place(Exit);
  }
  MB.load(Acc).retValue(DataType::Int32);
  return MB.finish();
}

Program WorkloadBuilder::build() {
  makeClasses();
  addHelpers();
  std::vector<uint32_t> IntKernels, FpKernels;
  const ArchetypeMix &Mix = Spec.Mix;
  for (unsigned I = 0; I < Mix.IntKernels; ++I)
    IntKernels.push_back(addIntKernel(I));
  for (unsigned I = 0; I < Mix.ObjectKernels; ++I)
    IntKernels.push_back(addObjectKernel(I));
  for (unsigned I = 0; I < Mix.ArrayKernels; ++I)
    IntKernels.push_back(addArrayKernel(I));
  for (unsigned I = 0; I < Mix.BranchKernels; ++I)
    IntKernels.push_back(addBranchKernel(I));
  for (unsigned I = 0; I < Mix.DecimalKernels; ++I)
    IntKernels.push_back(addDecimalKernel(I));
  for (unsigned I = 0; I < Mix.VirtualKernels; ++I)
    IntKernels.push_back(addVirtualKernel(I));
  for (unsigned I = 0; I < Mix.FpKernels; ++I)
    FpKernels.push_back(addFpKernel(I));
  for (unsigned I = 0; I < Mix.LongDoubleKernels; ++I)
    FpKernels.push_back(addLongDoubleKernel(I));

  // "Virtual method overridden" (Table 1): mark a kernel as invalidated by
  // a later class load once in a while.
  if (!IntKernels.empty() && R.nextBool(0.5))
    P.methodAt(IntKernels[R.nextBelow(IntKernels.size())]).Flags |=
        MF_VirtualOverridden;

  uint32_t Main = addDriver(IntKernels, FpKernels);
  P.setEntryMethod(Main);
  VerifyResult VR = verifyProgram(P);
  assert(VR.ok() && "generated workload failed verification");
  (void)VR;
  return std::move(P);
}

} // namespace

Program jitml::buildWorkload(const WorkloadSpec &Spec) {
  return WorkloadBuilder(Spec).build();
}

int64_t jitml::workloadChecksum(const Program &P, unsigned Iterations) {
  VirtualMachine::Config Cfg;
  Cfg.EnableJit = false;
  VirtualMachine VM(P, Cfg);
  int64_t Checksum = 0;
  for (unsigned I = 0; I < Iterations; ++I) {
    ExecResult R = VM.run({Value::ofI((int64_t)I)});
    assert(!R.Exceptional && "workload must not throw out of main");
    Checksum = (int64_t)mix64((uint64_t)Checksum ^ (uint64_t)R.Ret.I);
  }
  return Checksum;
}
