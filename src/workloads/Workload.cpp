//===- workloads/Workload.cpp - Suite definitions -------------------------===//

#include "workloads/Workload.h"

#include <cassert>

using namespace jitml;

namespace {

WorkloadSpec spec(const char *Name, const char *Code, Suite S, uint64_t Seed,
                  ArchetypeMix Mix, unsigned WorkScale, bool Poly,
                  bool StrictFp, unsigned UnsafePm, unsigned BigDecPm) {
  WorkloadSpec W;
  W.Name = Name;
  W.Code = Code;
  W.BenchSuite = S;
  W.Seed = Seed;
  W.Mix = Mix;
  W.WorkScale = WorkScale;
  W.PolymorphicDispatch = Poly;
  W.StrictFpMethods = StrictFp;
  W.UnsafePerMille = UnsafePm;
  W.BigDecimalPerMille = BigDecPm;
  return W;
}

ArchetypeMix mix(unsigned IntK, unsigned FpK, unsigned ObjK, unsigned ArrK,
                 unsigned BrK, unsigned DecK, unsigned VirtK, unsigned LdK,
                 unsigned Calls) {
  ArchetypeMix M;
  M.IntKernels = IntK;
  M.FpKernels = FpK;
  M.ObjectKernels = ObjK;
  M.ArrayKernels = ArrK;
  M.BranchKernels = BrK;
  M.DecimalKernels = DecK;
  M.VirtualKernels = VirtK;
  M.LongDoubleKernels = LdK;
  M.CallsPerKernel = Calls;
  return M;
}

std::vector<WorkloadSpec> makeSpecJvm98() {
  // The method-mix profiles mirror each benchmark's published character.
  std::vector<WorkloadSpec> S;
  // _201_compress: tight integer compression loops over byte arrays.
  S.push_back(spec("compress", "co", Suite::SpecJvm98, 201,
                   mix(5, 0, 0, 3, 1, 0, 0, 0, 28), 65, false, false, 40, 0));
  // _202_jess: expert system — rule matching, branchy, object churn.
  S.push_back(spec("jess", "js", Suite::SpecJvm98, 202,
                   mix(1, 0, 3, 1, 4, 0, 2, 0, 24), 50, true, false, 0, 0));
  // _209_db: in-memory database: objects, scans, a little BigDecimal.
  S.push_back(spec("db", "db", Suite::SpecJvm98, 209,
                   mix(1, 0, 5, 3, 1, 0, 0, 0, 24), 55, false, false, 0,
                   350));
  // _213_javac: the JDK compiler — heavy branching and exceptions.
  S.push_back(spec("javac", "jc", Suite::SpecJvm98, 213,
                   mix(1, 0, 2, 1, 6, 0, 3, 0, 20), 45, true, false, 0, 0));
  // _222_mpegaudio: FP decode kernels.
  S.push_back(spec("mpegaudio", "mp", Suite::SpecJvm98, 222,
                   mix(2, 6, 0, 1, 0, 0, 0, 1, 28), 65, false, true, 0, 0));
  // _227_mtrt: multithreaded ray tracer — FP + virtual dispatch.
  S.push_back(spec("mtrt", "mt", Suite::SpecJvm98, 227,
                   mix(1, 5, 2, 1, 0, 0, 3, 0, 24), 55, true, false, 0, 0));
  // _205_raytrace: the single-threaded sibling of mtrt.
  S.push_back(spec("raytrace", "rt", Suite::SpecJvm98, 205,
                   mix(1, 5, 2, 1, 0, 0, 3, 0, 24), 60, true, false, 0, 0));
  // _228_jack: parser generator — scanning and exception-driven control.
  S.push_back(spec("jack", "jk", Suite::SpecJvm98, 228,
                   mix(2, 0, 1, 3, 4, 0, 0, 0, 24), 50, false, false, 0, 0));
  return S;
}

std::vector<WorkloadSpec> makeDaCapo() {
  std::vector<WorkloadSpec> S;
  // avrora: AVR microcontroller simulation — integer + branch heavy.
  S.push_back(spec("avrora", "av", Suite::DaCapo, 9001,
                   mix(4, 0, 1, 2, 4, 0, 1, 0, 24), 55, false, false, 30, 0));
  // batik: SVG rendering — FP paths plus object graphs.
  S.push_back(spec("batik", "ba", Suite::DaCapo, 9002,
                   mix(1, 4, 3, 1, 1, 0, 1, 0, 20), 50, true, false, 0, 0));
  // eclipse: IDE workloads — virtual dispatch and branching everywhere.
  S.push_back(spec("eclipse", "ec", Suite::DaCapo, 9003,
                   mix(1, 0, 3, 1, 4, 0, 4, 0, 20), 45, true, false, 0, 0));
  // fop: XSL-FO to PDF — object construction and layout branching.
  S.push_back(spec("fop", "fo", Suite::DaCapo, 9004,
                   mix(1, 1, 4, 1, 3, 0, 1, 0, 20), 45, true, false, 0, 0));
  // h2: the banking benchmark — transactions over objects with
  // fixed-point (BCD) money arithmetic and real synchronization.
  S.push_back(spec("h2", "h2", Suite::DaCapo, 9005,
                   mix(1, 0, 5, 1, 1, 3, 0, 0, 24), 55, false, false, 0,
                   500));
  // jython: Python on the JVM — branchy interpreter loops, dispatch.
  S.push_back(spec("jython", "jy", Suite::DaCapo, 9006,
                   mix(2, 0, 2, 1, 5, 0, 3, 0, 20), 45, true, false, 0, 0));
  // luindex: document indexing — array scanning and integer hashing.
  S.push_back(spec("luindex", "lu", Suite::DaCapo, 9007,
                   mix(3, 0, 1, 5, 1, 0, 0, 0, 28), 65, false, false, 0, 0));
  // lusearch: index querying — scans plus branching.
  S.push_back(spec("lusearch", "ls", Suite::DaCapo, 9008,
                   mix(2, 0, 1, 4, 3, 0, 0, 0, 24), 55, false, false, 0, 0));
  // pmd: source analysis — AST walking: branches and virtual calls.
  S.push_back(spec("pmd", "pm", Suite::DaCapo, 9009,
                   mix(1, 0, 2, 1, 5, 0, 3, 0, 20), 45, true, false, 0, 0));
  // sunflow: ray tracing — almost pure FP.
  S.push_back(spec("sunflow", "sf", Suite::DaCapo, 9010,
                   mix(1, 6, 1, 1, 0, 0, 2, 1, 24), 60, true, true, 0, 0));
  // tomcat: servlet container — objects, synchronization, dispatch.
  S.push_back(spec("tomcat", "tc", Suite::DaCapo, 9011,
                   mix(1, 0, 4, 1, 3, 0, 3, 0, 20), 45, true, false, 0, 0));
  // xalan: XSLT — array/string processing with branchy dispatch.
  S.push_back(spec("xalan", "xa", Suite::DaCapo, 9012,
                   mix(2, 0, 1, 4, 3, 0, 2, 0, 24), 50, true, false, 0, 0));
  return S;
}

} // namespace

const std::vector<WorkloadSpec> &jitml::specJvm98Suite() {
  static const std::vector<WorkloadSpec> Suite = makeSpecJvm98();
  return Suite;
}

const std::vector<WorkloadSpec> &jitml::daCapoSuite() {
  static const std::vector<WorkloadSpec> Suite = makeDaCapo();
  return Suite;
}

const std::vector<WorkloadSpec> &jitml::trainingBenchmarks() {
  // Section 8.1: "data collection was limited to five SPECjvm98
  // benchmarks": compress, db, mpegaudio, mtrt, raytrace.
  static const std::vector<WorkloadSpec> Training = [] {
    std::vector<WorkloadSpec> T;
    for (const char *Code : {"co", "db", "mp", "mt", "rt"})
      for (const WorkloadSpec &S : specJvm98Suite())
        if (S.Code == Code)
          T.push_back(S);
    return T;
  }();
  return Training;
}

const WorkloadSpec &jitml::workloadByCode(const std::string &Code) {
  for (const WorkloadSpec &S : specJvm98Suite())
    if (S.Code == Code)
      return S;
  for (const WorkloadSpec &S : daCapoSuite())
    if (S.Code == Code)
      return S;
  assert(false && "unknown workload code");
  return specJvm98Suite().front();
}
