//===- support/StringInterner.h - String <-> id interning ------*- C++ -*-===//
///
/// \file
/// Bidirectional string interning. The archive format builds "a dictionary
/// of method signatures" (paper section 4.2) so records reference signatures
/// by a small integer id instead of repeating the string.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_STRINGINTERNER_H
#define JITML_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace jitml {

/// Assigns dense 0-based ids to distinct strings, preserving insertion order.
class StringInterner {
public:
  /// Returns the id for \p S, creating one if unseen.
  uint32_t intern(const std::string &S) {
    auto It = IdOf.find(S);
    if (It != IdOf.end())
      return It->second;
    uint32_t Id = (uint32_t)Strings.size();
    Strings.push_back(S);
    IdOf.emplace(S, Id);
    return Id;
  }

  /// Returns the id of \p S or UINT32_MAX when not interned.
  uint32_t lookup(const std::string &S) const {
    auto It = IdOf.find(S);
    return It == IdOf.end() ? UINT32_MAX : It->second;
  }

  const std::string &stringOf(uint32_t Id) const {
    assert(Id < Strings.size() && "interner id out of range");
    return Strings[Id];
  }

  size_t size() const { return Strings.size(); }
  const std::vector<std::string> &strings() const { return Strings; }

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> IdOf;
};

} // namespace jitml

#endif // JITML_SUPPORT_STRINGINTERNER_H
