//===- support/TablePrinter.h - Aligned text tables ------------*- C++ -*-===//
///
/// \file
/// Small helper that renders rows of strings as an aligned, pipe-separated
/// text table. The benchmark harness uses it to print the reproduced tables
/// and figure series in a stable, diffable format.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_TABLEPRINTER_H
#define JITML_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace jitml {

/// Collects rows and renders them with per-column alignment.
class TablePrinter {
public:
  /// Sets the header row (printed with a separator line beneath it).
  void setHeader(std::vector<std::string> Names);
  void addRow(std::vector<std::string> Cells);

  /// Renders the whole table; every column is padded to its widest cell.
  /// Numeric-looking cells are right-aligned, text is left-aligned.
  std::string render() const;

  size_t numRows() const { return Rows.size(); }

  /// Formats a double with \p Digits fractional digits.
  static std::string fmt(double Value, int Digits = 3);
  /// Formats "mean +- ci" pairs the way the paper's plots annotate bars.
  static std::string fmtCi(double Mean, double Ci, int Digits = 3);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace jitml

#endif // JITML_SUPPORT_TABLEPRINTER_H
