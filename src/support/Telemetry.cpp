//===- support/Telemetry.cpp ----------------------------------------------===//

#include "support/Telemetry.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

using namespace jitml;

//===----------------------------------------------------------------------===//
// Clock
//===----------------------------------------------------------------------===//

uint64_t jitml::telemetryNowUs() {
  // One process-wide epoch so every subsystem's timestamps are comparable.
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

//===----------------------------------------------------------------------===//
// TelemetryHistogram
//===----------------------------------------------------------------------===//

void TelemetryHistogram::record(uint64_t Value) {
  unsigned B = Value == 0 ? 0 : 64 - (unsigned)__builtin_clzll(Value);
  if (B >= NumBuckets)
    B = NumBuckets - 1;
  Buckets[B].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (Value < Cur &&
         !Min.compare_exchange_weak(Cur, Value, std::memory_order_relaxed)) {
  }
  Cur = Max.load(std::memory_order_relaxed);
  while (Value > Cur &&
         !Max.compare_exchange_weak(Cur, Value, std::memory_order_relaxed)) {
  }
}

TelemetryHistogram::Snapshot TelemetryHistogram::snapshot() const {
  // Per-field relaxed loads: a snapshot racing record() may be off by the
  // in-flight sample, which is fine for reporting.
  Snapshot S;
  S.Count = Count.load(std::memory_order_relaxed);
  S.Sum = Sum.load(std::memory_order_relaxed);
  uint64_t M = Min.load(std::memory_order_relaxed);
  S.Min = (S.Count && M != UINT64_MAX) ? M : 0;
  S.Max = Max.load(std::memory_order_relaxed);
  for (unsigned B = 0; B < NumBuckets; ++B)
    S.Buckets[B] = Buckets[B].load(std::memory_order_relaxed);
  return S;
}

void TelemetryHistogram::reset() {
  for (unsigned B = 0; B < NumBuckets; ++B)
    Buckets[B].store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(UINT64_MAX, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

uint64_t TelemetryHistogram::Snapshot::percentile(double P) const {
  if (Count == 0)
    return 0;
  P = std::min(std::max(P, 0.0), 1.0);
  uint64_t Rank = (uint64_t)(P * (double)Count);
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (unsigned B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen >= Rank)
      return B == 0 ? 0 : (uint64_t)1 << B; // bucket upper bound
  }
  return Max;
}

//===----------------------------------------------------------------------===//
// MetricRegistry
//===----------------------------------------------------------------------===//

struct MetricRegistry::Impl {
  mutable std::mutex Mu; ///< registration and snapshots, never the hot path
  // Node-based maps: references stay valid across later registrations.
  std::map<std::string, std::unique_ptr<TelemetryCounter>> Counters;
  std::map<std::string, std::unique_ptr<TelemetryGauge>> Gauges;
  std::map<std::string, std::unique_ptr<TelemetryHistogram>> Histograms;
};

MetricRegistry::MetricRegistry() : I(new Impl) {}
MetricRegistry::~MetricRegistry() { delete I; }

TelemetryCounter &MetricRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  std::unique_ptr<TelemetryCounter> &Slot = I->Counters[Name];
  if (!Slot)
    Slot = std::make_unique<TelemetryCounter>();
  return *Slot;
}

TelemetryGauge &MetricRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  std::unique_ptr<TelemetryGauge> &Slot = I->Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<TelemetryGauge>();
  return *Slot;
}

TelemetryHistogram &MetricRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  std::unique_ptr<TelemetryHistogram> &Slot = I->Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<TelemetryHistogram>();
  return *Slot;
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  std::vector<MetricSample> Out;
  Out.reserve(I->Counters.size() + I->Gauges.size() +
              I->Histograms.size() * 4);
  for (const auto &[Name, C] : I->Counters)
    Out.push_back({Name, C->value()});
  for (const auto &[Name, G] : I->Gauges)
    Out.push_back({Name, (uint64_t)G->value()});
  for (const auto &[Name, H] : I->Histograms) {
    TelemetryHistogram::Snapshot S = H->snapshot();
    Out.push_back({Name + ".count", S.Count});
    Out.push_back({Name + ".mean_us", (uint64_t)S.mean()});
    Out.push_back({Name + ".p95_us", S.percentile(0.95)});
    Out.push_back({Name + ".max_us", S.Max});
  }
  std::sort(Out.begin(), Out.end(),
            [](const MetricSample &A, const MetricSample &B) {
              return A.Name < B.Name;
            });
  return Out;
}

std::vector<CounterRow> MetricRegistry::counterRows() const {
  std::vector<CounterRow> Rows;
  for (const MetricSample &S : snapshot())
    Rows.push_back({S.Name, S.Value});
  return Rows;
}

std::string MetricRegistry::toText() const {
  return formatCounterTable(counterRows());
}

void MetricRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  for (auto &[Name, C] : I->Counters)
    C->reset();
  for (auto &[Name, G] : I->Gauges)
    G->reset();
  for (auto &[Name, H] : I->Histograms)
    H->reset();
}

namespace {

/// JITML_METRICS exit dump: "stderr"/"1" to stderr, anything else a path.
void dumpGlobalRegistryAtExit() {
  const char *Dest = std::getenv("JITML_METRICS");
  if (!Dest || !*Dest || std::strcmp(Dest, "0") == 0)
    return;
  std::string Table = MetricRegistry::global().toText();
  if (std::strcmp(Dest, "stderr") == 0 || std::strcmp(Dest, "1") == 0) {
    std::fputs(Table.c_str(), stderr);
    return;
  }
  if (std::FILE *F = std::fopen(Dest, "w")) {
    std::fputs(Table.c_str(), F);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "jitml: JITML_METRICS: cannot write %s\n", Dest);
  }
}

} // namespace

MetricRegistry &MetricRegistry::global() {
  static MetricRegistry R;
  static bool Registered = [] {
    if (const char *Dest = std::getenv("JITML_METRICS"))
      if (*Dest)
        std::atexit(dumpGlobalRegistryAtExit);
    return true;
  }();
  (void)Registered;
  return R;
}

//===----------------------------------------------------------------------===//
// TraceEmitter
//===----------------------------------------------------------------------===//

struct TraceEmitter::Impl {
  const size_t Capacity;
  std::mutex RingMu; ///< guards Ring and the writer-control flags
  std::condition_variable FlushCv;
  std::vector<TraceEvent> Ring;
  std::mutex WriteMu; ///< serializes sink calls (writer thread vs flushNow)
  SinkFn Sink;
  std::FILE *File = nullptr;
  std::thread Writer;
  bool StopWriter = false;
  bool Failed = false;
  bool Warned = false;

  explicit Impl(size_t Cap) : Capacity(Cap ? Cap : 1) {
    Ring.reserve(Capacity);
  }
};

TraceEmitter::TraceEmitter(size_t RingCapacity)
    : I(new Impl(RingCapacity)) {}

TraceEmitter::~TraceEmitter() {
  close();
  delete I;
}

TraceEmitter &TraceEmitter::global() {
  static TraceEmitter E;
  static bool Configured = [] {
    if (const char *Path = std::getenv("JITML_TRACE"))
      if (*Path)
        E.open(Path);
    return true;
  }();
  (void)Configured;
  return E;
}

void TraceEmitter::failOnce(const char *What) {
  bool Warn = false;
  {
    std::lock_guard<std::mutex> Lock(I->RingMu);
    if (!I->Warned) {
      I->Warned = true;
      Warn = true;
    }
    I->Failed = true;
    I->Ring.clear(); // nothing will ever drain it
  }
  Enabled.store(false, std::memory_order_relaxed);
  if (Warn)
    std::fprintf(stderr,
                 "jitml: telemetry trace disabled: %s "
                 "(continuing with counters only)\n",
                 What);
}

bool TraceEmitter::open(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    failOnce("cannot open JITML_TRACE path");
    return false;
  }
  SinkFn Sink = [F](const char *Data, size_t Size) {
    return std::fwrite(Data, 1, Size, F) == Size && std::fflush(F) == 0;
  };
  {
    std::lock_guard<std::mutex> Lock(I->RingMu);
    if (!startLocked(std::move(Sink))) {
      std::fclose(F);
      return false;
    }
    I->File = F;
  }
  Enabled.store(true, std::memory_order_relaxed);
  return true;
}

bool TraceEmitter::openWithSink(SinkFn Sink) {
  {
    std::lock_guard<std::mutex> Lock(I->RingMu);
    if (!startLocked(std::move(Sink)))
      return false;
  }
  Enabled.store(true, std::memory_order_relaxed);
  return true;
}

bool TraceEmitter::startLocked(SinkFn Sink) {
  if (I->Writer.joinable())
    return false; // already open; close() first
  I->Sink = std::move(Sink);
  I->StopWriter = false;
  I->Failed = false;
  I->Writer = std::thread([this] { writerLoop(); });
  return true;
}

void TraceEmitter::record(const TraceEvent &E) {
  if (!enabled())
    return;
  // Simulated ring saturation: the event is dropped (and counted) exactly
  // as if the writer thread had fallen behind.
  if (JITML_FAULT_POINT("trace.ring.full")) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bool Nudge = false;
  {
    std::lock_guard<std::mutex> Lock(I->RingMu);
    if (I->Failed || I->Ring.size() >= I->Capacity) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    I->Ring.push_back(E);
    Nudge = I->Ring.size() >= I->Capacity / 2;
  }
  if (Nudge)
    I->FlushCv.notify_one(); // wake the writer before the ring fills
}

bool TraceEmitter::flushLocked(std::vector<TraceEvent> &Scratch) {
  // Serialize outside any lock that record() takes; WriteMu only orders
  // concurrent flushers.
  std::string Out;
  Out.reserve(Scratch.size() * 96);
  char Buf[256];
  for (const TraceEvent &E : Scratch) {
    int N = std::snprintf(Buf, sizeof(Buf),
                          "{\"stage\":\"%s\",\"start_us\":%llu,"
                          "\"dur_us\":%llu",
                          E.Stage, (unsigned long long)E.StartUs,
                          (unsigned long long)E.DurUs);
    Out.append(Buf, (size_t)N);
    if (E.Method >= 0) {
      N = std::snprintf(Buf, sizeof(Buf), ",\"method\":%lld",
                        (long long)E.Method);
      Out.append(Buf, (size_t)N);
    }
    if (E.Level >= 0) {
      N = std::snprintf(Buf, sizeof(Buf), ",\"level\":%d", E.Level);
      Out.append(Buf, (size_t)N);
    }
    if (E.Worker >= 0) {
      N = std::snprintf(Buf, sizeof(Buf), ",\"worker\":%d", E.Worker);
      Out.append(Buf, (size_t)N);
    }
    if (E.Items >= 0) {
      N = std::snprintf(Buf, sizeof(Buf), ",\"items\":%lld",
                        (long long)E.Items);
      Out.append(Buf, (size_t)N);
    }
    if (E.Cycles != 0.0) {
      N = std::snprintf(Buf, sizeof(Buf), ",\"cycles\":%.17g", E.Cycles);
      Out.append(Buf, (size_t)N);
    }
    if (E.Detail) {
      N = std::snprintf(Buf, sizeof(Buf), ",\"detail\":\"%s\"", E.Detail);
      Out.append(Buf, (size_t)N);
    }
    Out += E.Ok ? ",\"ok\":true}\n" : ",\"ok\":false}\n";
  }
  if (Out.empty())
    return true;
  // Simulated sink failure (disk full): the caller runs failOnce and the
  // emitter must degrade to counters-only without losing the process.
  if (JITML_FAULT_POINT("trace.sink.fail"))
    return false;
  std::lock_guard<std::mutex> Lock(I->WriteMu);
  if (!I->Sink)
    return true; // already closed/failed: events are simply dropped
  if (!I->Sink(Out.data(), Out.size()))
    return false;
  Written.fetch_add(Scratch.size(), std::memory_order_relaxed);
  return true;
}

void TraceEmitter::writerLoop() {
  std::vector<TraceEvent> Scratch;
  for (;;) {
    bool Stopping;
    {
      std::unique_lock<std::mutex> Lock(I->RingMu);
      I->FlushCv.wait_for(Lock, std::chrono::milliseconds(20), [&] {
        return I->StopWriter || I->Ring.size() >= I->Capacity / 2;
      });
      Scratch.clear();
      Scratch.swap(I->Ring);
      I->Ring.reserve(I->Capacity);
      Stopping = I->StopWriter;
    }
    if (!flushLocked(Scratch)) {
      failOnce("trace write failed (disk full or short write?)");
      return;
    }
    if (Stopping) {
      // One last sweep: events recorded between the swap and Enabled
      // going false would otherwise be stranded in the ring.
      {
        std::lock_guard<std::mutex> Lock(I->RingMu);
        Scratch.clear();
        Scratch.swap(I->Ring);
      }
      if (!flushLocked(Scratch))
        failOnce("trace write failed (disk full or short write?)");
      return;
    }
  }
}

void TraceEmitter::flushNow() {
  std::vector<TraceEvent> Scratch;
  {
    std::lock_guard<std::mutex> Lock(I->RingMu);
    Scratch.swap(I->Ring);
  }
  if (!flushLocked(Scratch))
    failOnce("trace write failed (disk full or short write?)");
}

void TraceEmitter::close() {
  Enabled.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(I->RingMu);
    I->StopWriter = true;
  }
  I->FlushCv.notify_all();
  if (I->Writer.joinable())
    I->Writer.join();
  std::lock_guard<std::mutex> WLock(I->WriteMu);
  I->Sink = nullptr;
  if (I->File) {
    std::fclose(I->File);
    I->File = nullptr;
  }
  std::lock_guard<std::mutex> Lock(I->RingMu);
  I->Ring.clear();
  I->StopWriter = false;
}
