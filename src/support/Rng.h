//===- support/Rng.h - Deterministic pseudo-random generators --*- C++ -*-===//
//
// Part of the jitml project: a reproduction of "Using Machines to Learn
// Method-Specific Compilation Strategies" (CGO 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic pseudo-random number generators used everywhere a
/// random choice is made (modifier generation, workload synthesis, simulated
/// measurement noise). Using our own generators, rather than std::mt19937,
/// guarantees bit-identical experiment results across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_RNG_H
#define JITML_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace jitml {

/// SplitMix64: tiny generator used to seed Xoshiro and for cheap hashing.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Mixes a 64-bit value through the SplitMix64 finalizer. Useful to derive
/// independent seeds from (seed, index) pairs.
inline uint64_t mix64(uint64_t X) {
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Xoshiro256**: the main generator. Fast, high quality, 256-bit state.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (auto &Word : State)
      Word = SM.next();
  }

  /// Uniform 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Debiased multiply-shift (Lemire). Good enough for simulation use.
    unsigned __int128 Product = (unsigned __int128)next() * Bound;
    return (uint64_t)(Product >> 64);
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + (int64_t)nextBelow((uint64_t)(Hi - Lo) + 1);
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return (double)(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability P of returning true.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Approximately normal sample (sum of uniforms), mean 0, stddev 1.
  double nextGaussian() {
    double Sum = 0.0;
    for (int I = 0; I < 12; ++I)
      Sum += nextDouble();
    return Sum - 6.0;
  }

  /// Advances the state by 2^128 steps (the xoshiro256** jump
  /// polynomial): up to 2^128 callers can take non-overlapping
  /// subsequences of one seeded stream, deterministically.
  void jump() {
    static constexpr uint64_t Poly[4] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    uint64_t S[4] = {0, 0, 0, 0};
    for (uint64_t Word : Poly)
      for (int Bit = 0; Bit < 64; ++Bit) {
        if (Word & (1ULL << Bit))
          for (int I = 0; I < 4; ++I)
            S[I] ^= State[I];
        next();
      }
    for (int I = 0; I < 4; ++I)
      State[I] = S[I];
  }

  /// Derives an independent child generator from this stream's next draw
  /// (consuming it). Deterministic: the Nth split of a seeded generator is
  /// always the same generator.
  Rng split() { return Rng(next()); }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace jitml

#endif // JITML_SUPPORT_RNG_H
