//===- support/Env.h - Typed environment-variable lookups -------*- C++ -*-===//
///
/// \file
/// Small helpers for the JITML_* configuration knobs. Every subsystem that
/// reads its config from the environment (thread pool, trace emitter,
/// serving daemon) wants the same three lines: getenv, parse, fall back to
/// the default on absent/garbage input. Garbage never aborts — a knob that
/// does not parse keeps its default, matching the fail-safe posture of the
/// rest of the configuration surface.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_ENV_H
#define JITML_SUPPORT_ENV_H

#include <cstdint>
#include <cstdlib>
#include <string>

namespace jitml {

/// $Name parsed as a non-negative integer; \p Default when unset or
/// unparseable (trailing garbage counts as unparseable).
inline uint64_t envU64(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(V, &End, 10);
  if (End == V || *End != '\0')
    return Default;
  return (uint64_t)Parsed;
}

/// $Name as a string; \p Default when unset (empty string counts as unset).
inline std::string envString(const char *Name, const std::string &Default) {
  const char *V = std::getenv(Name);
  return (V && *V) ? std::string(V) : Default;
}

} // namespace jitml

#endif // JITML_SUPPORT_ENV_H
