//===- support/Statistics.cpp ---------------------------------------------===//

#include "support/Statistics.h"

#include "support/TablePrinter.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace jitml;

void RunningStat::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    if (X < Min)
      Min = X;
    if (X > Max)
      Max = X;
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / (double)N;
  M2 += Delta * (X - Mean);
}

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / (double)(N - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  return N ? Min : std::numeric_limits<double>::quiet_NaN();
}

double RunningStat::max() const {
  return N ? Max : std::numeric_limits<double>::quiet_NaN();
}

double RunningStat::ci95HalfWidth() const {
  if (N < 2)
    return std::numeric_limits<double>::quiet_NaN();
  // Two-sided 97.5% t quantiles for df = 1..30; 1.96 beyond that.
  static const double TTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  size_t Df = N - 1;
  double T = Df <= 30 ? TTable[Df - 1] : 1.96;
  return T * stddev() / std::sqrt((double)N);
}

RunningStat jitml::summarize(const std::vector<double> &Xs) {
  RunningStat S;
  for (double X : Xs)
    S.add(X);
  return S;
}

std::string jitml::formatCounterTable(const std::vector<CounterRow> &Rows) {
  TablePrinter T;
  T.setHeader({"counter", "value"});
  for (const CounterRow &R : Rows)
    T.addRow({R.Name, std::to_string(R.Value)});
  return T.render();
}

double jitml::geometricMean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double X : Xs) {
    assert(X > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(X);
  }
  return std::exp(LogSum / (double)Xs.size());
}
