//===- support/TablePrinter.cpp -------------------------------------------===//

#include "support/TablePrinter.h"

#include <cctype>
#include <cstdio>

using namespace jitml;

void TablePrinter::setHeader(std::vector<std::string> Names) {
  Header = std::move(Names);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

static bool looksNumeric(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!std::isdigit((unsigned char)C) && C != '.' && C != '-' && C != '+' &&
        C != 'e' && C != 'E' && C != '%' && C != ',' && C != ':')
      return false;
  return std::isdigit((unsigned char)S.front()) || S.front() == '-' ||
         S.front() == '+' || S.front() == '.';
}

std::string TablePrinter::render() const {
  // Compute column widths over header plus all rows.
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      if (Cells[I].size() > Widths[I])
        Widths[I] = Cells[I].size();
  };
  if (!Header.empty())
    Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Cells, bool AlignNumeric) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      size_t Pad = Widths[I] - Cell.size();
      Out += I == 0 ? "| " : " | ";
      if (AlignNumeric && looksNumeric(Cell)) {
        Out.append(Pad, ' ');
        Out += Cell;
      } else {
        Out += Cell;
        Out.append(Pad, ' ');
      }
    }
    Out += " |\n";
  };

  if (!Header.empty()) {
    Emit(Header, /*AlignNumeric=*/false);
    for (size_t I = 0; I < Widths.size(); ++I) {
      Out += I == 0 ? "|-" : "-|-";
      Out.append(Widths[I], '-');
    }
    Out += "-|\n";
  }
  for (const auto &Row : Rows)
    Emit(Row, /*AlignNumeric=*/true);
  return Out;
}

std::string TablePrinter::fmt(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string TablePrinter::fmtCi(double Mean, double Ci, int Digits) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%.*f +- %.*f", Digits, Mean, Digits, Ci);
  return Buf;
}
