//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/FaultInjection.h"

#include <atomic>
#include <cstdlib>
#include <exception>

using namespace jitml;

namespace {
thread_local bool IsPoolWorker = false;
} // namespace

ThreadPool::ThreadPool() {
  MetricRegistry &R = MetricRegistry::global();
  Tel.Tasks = &R.counter("pool.tasks");
  Tel.BusyUs = &R.counter("pool.busy_us");
  Tel.WorkerCount = &R.gauge("pool.workers");
  Tel.WaitUs = &R.histogram("pool.task_wait");
  Tel.RunUs = &R.histogram("pool.task_run");
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  TaskReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back({std::move(Task), telemetryNowUs()});
  }
  TaskReady.notify_one();
}

void ThreadPool::ensureWorkers(unsigned Threads) {
  std::lock_guard<std::mutex> Lock(Mu);
  while (Workers.size() < Threads && !ShuttingDown)
    Workers.emplace_back([this] { workerLoop(); });
  Tel.WorkerCount->set((int64_t)Workers.size());
}

unsigned ThreadPool::workerCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return (unsigned)Workers.size();
}

void ThreadPool::workerLoop() {
  IsPoolWorker = true;
  for (;;) {
    PoolTask Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      TaskReady.wait(Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down and drained
      Task = std::move(Queue.back());
      Queue.pop_back();
    }
    uint64_t StartUs = telemetryNowUs();
    Tel.WaitUs->record(StartUs > Task.SubmitUs ? StartUs - Task.SubmitUs
                                               : 0);
    // Simulated scheduling jitter: the task runs, but late. parallelFor's
    // completion accounting must tolerate arbitrarily slow helpers.
    uint64_t DelayMs = 1;
    if (JITML_FAULT_POINT_ARG("pool.task.delay", DelayMs))
      faultDelayMs(DelayMs);
    Task.Fn();
    uint64_t RunUs = telemetryNowUs() - StartUs;
    Tel.Tasks->add();
    Tel.RunUs->record(RunUs);
    Tel.BusyUs->add(RunUs);
  }
}

ThreadPool &ThreadPool::shared() {
  static ThreadPool Pool;
  return Pool;
}

bool ThreadPool::onWorkerThread() { return IsPoolWorker; }

unsigned jitml::configuredJobs() {
  const char *Env = std::getenv("JITML_JOBS");
  if (Env && *Env) {
    long V = std::strtol(Env, nullptr, 10);
    if (V >= 1)
      return (unsigned)V;
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW >= 1 ? HW : 1;
}

void jitml::parallelFor(size_t N, const std::function<void(size_t)> &Body,
                        unsigned Jobs) {
  if (Jobs == 0)
    Jobs = configuredJobs();
  if (N <= 1 || Jobs <= 1 || ThreadPool::onWorkerThread()) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }

  // Shared loop state: workers and the caller race on Next; every index is
  // claimed exactly once. Helpers signal completion through Outstanding.
  struct LoopState {
    std::atomic<size_t> Next{0};
    std::mutex Mu;
    std::condition_variable Done;
    unsigned Outstanding = 0;
    std::exception_ptr FirstError;
  };
  auto State = std::make_shared<LoopState>();

  auto Drain = [State, &Body, N] {
    for (;;) {
      size_t I = State->Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        Body(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(State->Mu);
        if (!State->FirstError)
          State->FirstError = std::current_exception();
      }
    }
  };

  unsigned Helpers = (unsigned)std::min<size_t>(Jobs, N) - 1;
  ThreadPool &Pool = ThreadPool::shared();
  Pool.ensureWorkers(Helpers);
  State->Outstanding = Helpers;
  for (unsigned H = 0; H < Helpers; ++H)
    Pool.submit([State, Drain] {
      Drain();
      std::lock_guard<std::mutex> Lock(State->Mu);
      if (--State->Outstanding == 0)
        State->Done.notify_all();
    });

  Drain(); // the caller participates
  std::unique_lock<std::mutex> Lock(State->Mu);
  State->Done.wait(Lock, [&] { return State->Outstanding == 0; });
  if (State->FirstError)
    std::rethrow_exception(State->FirstError);
}
