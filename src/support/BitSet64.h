//===- support/BitSet64.h - Fixed 64-bit bitset ----------------*- C++ -*-===//
///
/// \file
/// A 64-bit bitset with explicit width. Compilation-plan modifiers are "a
/// sequence of bits [where] each bit determines whether a code transformation
/// is enabled" (paper section 5); with 58 controllable transformations the
/// whole modifier fits in one machine word, which keeps the archive format
/// and the bridge protocol compact.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_BITSET64_H
#define JITML_SUPPORT_BITSET64_H

#include <cassert>
#include <cstdint>
#include <string>

namespace jitml {

/// Fixed-width (<= 64) bitset with value semantics.
class BitSet64 {
public:
  BitSet64() = default;
  BitSet64(unsigned NumBits, uint64_t Bits) : Width(NumBits), Bits(Bits) {
    assert(NumBits <= 64 && "BitSet64 holds at most 64 bits");
    assert((NumBits == 64 || (Bits >> NumBits) == 0) &&
           "bits set beyond declared width");
  }

  static BitSet64 allZero(unsigned NumBits) { return BitSet64(NumBits, 0); }

  static BitSet64 allOne(unsigned NumBits) {
    assert(NumBits <= 64 && "BitSet64 holds at most 64 bits");
    uint64_t Mask = NumBits == 64 ? ~0ULL : ((1ULL << NumBits) - 1);
    return BitSet64(NumBits, Mask);
  }

  unsigned width() const { return Width; }
  uint64_t raw() const { return Bits; }

  bool test(unsigned I) const {
    assert(I < Width && "bit index out of range");
    return (Bits >> I) & 1;
  }

  void set(unsigned I) {
    assert(I < Width && "bit index out of range");
    Bits |= (1ULL << I);
  }

  void reset(unsigned I) {
    assert(I < Width && "bit index out of range");
    Bits &= ~(1ULL << I);
  }

  void setTo(unsigned I, bool V) {
    if (V)
      set(I);
    else
      reset(I);
  }

  unsigned popCount() const { return (unsigned)__builtin_popcountll(Bits); }

  bool any() const { return Bits != 0; }
  bool none() const { return Bits == 0; }

  friend bool operator==(const BitSet64 &A, const BitSet64 &B) {
    return A.Width == B.Width && A.Bits == B.Bits;
  }
  friend bool operator!=(const BitSet64 &A, const BitSet64 &B) {
    return !(A == B);
  }
  /// Lexicographic order so modifiers can be used as map keys.
  friend bool operator<(const BitSet64 &A, const BitSet64 &B) {
    if (A.Width != B.Width)
      return A.Width < B.Width;
    return A.Bits < B.Bits;
  }

  /// Renders as a bit string, most significant (highest index) bit first,
  /// e.g. width 4 with bit 0 set -> "0001".
  std::string toString() const {
    std::string S;
    S.reserve(Width);
    for (unsigned I = Width; I-- > 0;)
      S.push_back(test(I) ? '1' : '0');
    return S;
  }

private:
  unsigned Width = 0;
  uint64_t Bits = 0;
};

} // namespace jitml

#endif // JITML_SUPPORT_BITSET64_H
