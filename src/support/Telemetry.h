//===- support/Telemetry.h - Metrics registry + JSONL tracing ---*- C++ -*-===//
///
/// \file
/// The unified observability layer. Every subsystem — compilation queue,
/// async pipeline, bridge client, code cache, thread pool, training — used
/// to keep its own ad-hoc counter struct; they now report through one
/// process-wide MetricRegistry of named atomic metrics, so experiment
/// reports, the figure harness, and the bench JSON all render the same
/// table (support/Statistics::formatCounterTable).
///
/// Three metric kinds, all with lock-free hot paths:
///  * TelemetryCounter — monotonic; add() is one relaxed fetch_add;
///  * TelemetryGauge   — a settable level (worker counts, queue depth);
///  * TelemetryHistogram — latency distribution over power-of-two buckets
///    with atomic count/sum/min/max; record() touches no lock.
///
/// Registration (registry.counter("queue.enqueued")) takes a mutex, so
/// subsystems resolve their metric pointers once at construction and keep
/// the raw pointer: the registry is append-only and process-lived, so the
/// pointers stay valid forever.
///
/// Tracing: TraceEmitter turns discrete spans (compile requests, queue
/// waits, bridge round trips, cache installs, training folds) into a JSONL
/// file, one object per line. Events go into a bounded in-memory ring; a
/// background thread flushes the ring off the hot path, so record() never
/// performs I/O and never blocks the interpreter thread. A full ring drops
/// the event (counted under trace.dropped) rather than stalling. Any write
/// failure — unwritable path, disk full, short write — prints ONE warning,
/// disables tracing, and the process degrades to counters-only; it never
/// crashes and never blocks.
///
/// Knobs: JITML_TRACE=<path> enables the emitter at first use;
/// JITML_METRICS=<stderr|path> dumps the registry table at process exit.
///
/// Simulated time vs wall time: histograms and span durations measure real
/// wall microseconds (telemetryNowUs), which never feed back into any
/// simulated-cycle statistic — figures stay bit-deterministic with
/// telemetry on or off. Spans that describe simulated work (compiles)
/// additionally carry the simulated cycle count in the `cycles` field so a
/// trace can be reconciled against the VM's cycle accounting.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_TELEMETRY_H
#define JITML_SUPPORT_TELEMETRY_H

#include "support/Statistics.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace jitml {

/// Monotonic counter; safe to bump from any thread.
class TelemetryCounter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A settable level (e.g. current worker count).
class TelemetryGauge {
public:
  void set(int64_t X) { V.store(X, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Latency histogram over power-of-two buckets (bucket B holds values in
/// [2^(B-1), 2^B), bucket 0 holds zero), plus exact count/sum/min/max.
/// record() is lock-free: one relaxed add per bucket/count/sum and a CAS
/// loop only when a new min or max is observed.
class TelemetryHistogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void record(uint64_t Value);

  struct Snapshot {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = 0; ///< 0 when Count == 0
    uint64_t Max = 0;
    uint64_t Buckets[NumBuckets] = {};

    double mean() const { return Count ? (double)Sum / (double)Count : 0.0; }
    /// Upper bound of the bucket containing the P-quantile (P in [0,1]).
    uint64_t percentile(double P) const;
  };
  Snapshot snapshot() const;
  void reset();

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// One row of a registry snapshot (flattened for rendering).
struct MetricSample {
  std::string Name;
  uint64_t Value = 0;
};

/// Process-wide, append-only table of named metrics. Lookup by name takes
/// a mutex; do it once and cache the pointer (stable for process life).
class MetricRegistry {
public:
  /// The process-wide registry every subsystem reports into.
  static MetricRegistry &global();

  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry &) = delete;
  MetricRegistry &operator=(const MetricRegistry &) = delete;

  TelemetryCounter &counter(const std::string &Name);
  TelemetryGauge &gauge(const std::string &Name);
  TelemetryHistogram &histogram(const std::string &Name);

  /// Name-sorted snapshot: counters and gauges as-is; each histogram
  /// flattened to .count/.sum_us/.mean_us/.p95_us/.max_us rows.
  std::vector<MetricSample> snapshot() const;

  /// snapshot() as CounterRow rows for formatCounterTable.
  std::vector<CounterRow> counterRows() const;

  /// Aligned two-column table of the whole registry.
  std::string toText() const;

  /// Zeroes every metric (the names stay registered). Snapshots taken
  /// concurrently see either the old or the new value per metric.
  void resetAll();

private:
  struct Impl;
  Impl *I;
};

/// Monotonic wall-clock microseconds (steady_clock based). Used only for
/// telemetry durations, never for simulated time.
uint64_t telemetryNowUs();

/// One trace span or instant event. String fields must have static
/// lifetime (the emitter stores the pointers, not copies).
struct TraceEvent {
  const char *Stage = "";       ///< e.g. "compile", "queue_wait"
  uint64_t StartUs = 0;         ///< wall us at span start (telemetryNowUs)
  uint64_t DurUs = 0;           ///< wall duration; 0 for instant events
  int64_t Method = -1;          ///< method index / fold index; -1 = n/a
  int Level = -1;               ///< OptLevel as int; -1 = n/a
  int Worker = -1;              ///< worker index; -1 = caller thread
  int64_t Items = -1;           ///< batch size / element count; -1 = n/a
  double Cycles = 0.0;          ///< simulated cycles, when meaningful
  const char *Detail = nullptr; ///< e.g. "installed", "stale", "timeout"
  bool Ok = true;
};

/// Ring-buffered JSONL trace writer. See the file comment for the
/// threading and failure contract.
class TraceEmitter {
public:
  /// Bytes-out function; returns false on any failure (short write, disk
  /// full). Lets tests inject failing sinks; production wraps fwrite.
  using SinkFn = std::function<bool(const char *Data, size_t Size)>;

  /// The process-wide emitter; opens $JITML_TRACE on first use.
  static TraceEmitter &global();

  explicit TraceEmitter(size_t RingCapacity = 8192);
  ~TraceEmitter(); ///< close()

  TraceEmitter(const TraceEmitter &) = delete;
  TraceEmitter &operator=(const TraceEmitter &) = delete;

  /// Cheap gate for callers that would otherwise compute span fields.
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Buffers one event. Never blocks on I/O; a full ring drops the event.
  /// No-op while disabled.
  void record(const TraceEvent &E);

  /// Starts tracing to \p Path. False (with one stderr warning) when the
  /// path cannot be opened; the emitter stays disabled.
  bool open(const std::string &Path);

  /// Starts tracing into an arbitrary sink (tests).
  bool openWithSink(SinkFn Sink);

  /// Stops tracing: flushes whatever the ring still holds, joins the
  /// writer thread, closes the file. Safe to call repeatedly, from any
  /// state, with events still being recorded concurrently.
  void close();

  /// Synchronously drains the ring to the sink (still off the record()
  /// path — callers are tests and benchmarks, not the interpreter).
  void flushNow();

  uint64_t eventsWritten() const {
    return Written.load(std::memory_order_relaxed);
  }
  uint64_t eventsDropped() const {
    return Dropped.load(std::memory_order_relaxed);
  }

private:
  struct Impl;
  bool startLocked(SinkFn Sink); ///< common tail of open/openWithSink
  void writerLoop();
  bool flushLocked(std::vector<TraceEvent> &Scratch);
  void failOnce(const char *What);

  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> Written{0};
  std::atomic<uint64_t> Dropped{0};
  Impl *I;
};

} // namespace jitml

#endif // JITML_SUPPORT_TELEMETRY_H
