//===- support/Memo.h - Compile-path memoization switch ---------*- C++ -*-===//
///
/// \file
/// The process-wide switch for the compile-path caches: pass memoization in
/// the optimizer, the PassContext analysis caches (LoopInfo / dominators /
/// guard facts), and MethodIL's cached live-node count. All of these are
/// keyed on MethodIL's modification epoch and are bit-identical by
/// construction; the switch exists purely as a debugging escape hatch
/// (JITML_OPT_MEMO=off) so a suspected caching bug can be ruled out in one
/// rerun.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_MEMO_H
#define JITML_SUPPORT_MEMO_H

namespace jitml {

/// True unless JITML_OPT_MEMO is "off"/"0" (read once on first use) or a
/// test/driver turned the caches off via setMemoEnabled. The accessor is a
/// single relaxed atomic load after initialization.
bool memoEnabled();

/// Test/driver override; takes effect immediately on all threads.
void setMemoEnabled(bool On);

} // namespace jitml

#endif // JITML_SUPPORT_MEMO_H
