//===- support/VarInt.cpp -------------------------------------------------===//

#include "support/VarInt.h"

using namespace jitml;

void jitml::encodeVarUInt(std::vector<uint8_t> &Out, uint64_t Value) {
  do {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    if (Value != 0)
      Byte |= 0x80;
    Out.push_back(Byte);
  } while (Value != 0);
}

void jitml::encodeVarInt(std::vector<uint8_t> &Out, int64_t Value) {
  // Zig-zag: map sign into the low bit so small magnitudes stay short.
  uint64_t ZigZag = ((uint64_t)Value << 1) ^ (uint64_t)(Value >> 63);
  encodeVarUInt(Out, ZigZag);
}

uint64_t ByteReader::readVarUInt() {
  uint64_t Result = 0;
  unsigned Shift = 0;
  while (true) {
    if (Pos >= Size || Shift >= 64) {
      Error = true;
      return 0;
    }
    uint8_t Byte = Data[Pos++];
    Result |= (uint64_t)(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return Result;
    Shift += 7;
  }
}

int64_t ByteReader::readVarInt() {
  uint64_t ZigZag = readVarUInt();
  return (int64_t)(ZigZag >> 1) ^ -(int64_t)(ZigZag & 1);
}

uint8_t ByteReader::readByte() {
  if (Pos >= Size) {
    Error = true;
    return 0;
  }
  return Data[Pos++];
}

bool ByteReader::readBytes(uint8_t *Out, size_t N) {
  if (Size - Pos < N) {
    Error = true;
    return false;
  }
  for (size_t I = 0; I < N; ++I)
    Out[I] = Data[Pos + I];
  Pos += N;
  return true;
}
