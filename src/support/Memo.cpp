//===- support/Memo.cpp ---------------------------------------------------===//

#include "support/Memo.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

using namespace jitml;

namespace {

std::atomic<int> MemoCell{-1}; // -1 = not yet read from the environment

bool readFromEnv() {
  const char *E = std::getenv("JITML_OPT_MEMO");
  if (E && (std::strcmp(E, "off") == 0 || std::strcmp(E, "0") == 0))
    return false;
  return true;
}

} // namespace

bool jitml::memoEnabled() {
  int V = MemoCell.load(std::memory_order_relaxed);
  if (V < 0) {
    V = readFromEnv() ? 1 : 0;
    int Expected = -1;
    if (!MemoCell.compare_exchange_strong(Expected, V,
                                          std::memory_order_relaxed))
      V = Expected;
  }
  return V != 0;
}

void jitml::setMemoEnabled(bool On) {
  MemoCell.store(On ? 1 : 0, std::memory_order_relaxed);
}
