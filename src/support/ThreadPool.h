//===- support/ThreadPool.h - Reusable worker pool --------------*- C++ -*-===//
///
/// \file
/// A small reusable worker pool behind the learning pipeline's parallelism.
/// Work is always expressed as an index space (parallelFor): callers keep
/// one pre-sized result slot per index, every task derives its random seeds
/// from its index alone, and the caller folds the slots in index order —
/// so the parallel schedule can never change a reported number, only the
/// wall-clock it takes to produce it.
///
/// Parallelism is controlled by the JITML_JOBS environment variable
/// (default: hardware_concurrency). JITML_JOBS=1 runs every loop inline on
/// the calling thread, which is bit-for-bit today's sequential behavior.
/// Nested parallelFor calls from inside a worker run inline too, so outer
/// fan-out (figure cells) composes with inner fan-out (series runs)
/// without oversubscription or deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_THREADPOOL_H
#define JITML_SUPPORT_THREADPOOL_H

#include "support/Telemetry.h"

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jitml {

/// Fixed set of worker threads consuming a shared task queue. One process-
/// wide instance (ThreadPool::shared()) serves every parallelFor; it grows
/// lazily up to the largest job count ever requested and is torn down at
/// process exit.
class ThreadPool {
public:
  ThreadPool();
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues one task. Tasks must not throw.
  void submit(std::function<void()> Task);

  /// Grows the pool to at least \p Threads workers.
  void ensureWorkers(unsigned Threads);

  unsigned workerCount() const;

  /// The process-wide pool.
  static ThreadPool &shared();

  /// True on a thread owned by any ThreadPool (used to run nested
  /// parallel loops inline).
  static bool onWorkerThread();

private:
  void workerLoop();

  /// A queued task plus the wall time it entered the queue, so the pool
  /// reports task wait (submit -> start) and run time distributions.
  struct PoolTask {
    std::function<void()> Fn;
    uint64_t SubmitUs = 0;
  };

  /// Process-wide metrics shared by every pool (in practice: shared()).
  struct TelemetryRefs {
    TelemetryCounter *Tasks, *BusyUs;
    TelemetryGauge *WorkerCount;
    TelemetryHistogram *WaitUs, *RunUs;
  };

  mutable std::mutex Mu;
  std::condition_variable TaskReady;
  std::vector<std::thread> Workers;
  std::vector<PoolTask> Queue; ///< LIFO; order is irrelevant
  TelemetryRefs Tel;
  bool ShuttingDown = false;
};

/// Number of parallel jobs the pipeline should use: $JITML_JOBS when set to
/// a positive integer, otherwise std::thread::hardware_concurrency()
/// (at least 1).
unsigned configuredJobs();

/// Runs Body(0) .. Body(N-1), each index exactly once, all complete on
/// return. Indices execute concurrently on up to \p Jobs threads
/// (including the caller); Jobs == 0 means configuredJobs(). With one job,
/// one index, or when already on a pool worker, the loop runs inline in
/// index order — the exact sequential path. Bodies must be independent:
/// they may only write state owned by their index (ordered result slots).
/// The first exception thrown by a body is rethrown on the caller after
/// the loop drains.
void parallelFor(size_t N, const std::function<void(size_t)> &Body,
                 unsigned Jobs = 0);

} // namespace jitml

#endif // JITML_SUPPORT_THREADPOOL_H
