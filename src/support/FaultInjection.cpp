//===- support/FaultInjection.cpp -----------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Rng.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

using namespace jitml;

std::atomic<uint32_t> jitml::detail::FaultEpoch{0};

void jitml::faultDelayMs(uint64_t Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

namespace {

/// FNV-1a over the point name; only used to derive per-point seeds.
uint64_t hashName(const std::string &Name) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : Name) {
    H ^= (uint8_t)C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Uniform double in [0, 1) from one mixed 64-bit draw.
double unitDouble(uint64_t Bits) { return (double)(Bits >> 11) * 0x1.0p-53; }

bool patternMatches(const std::string &Pattern, const std::string &Name) {
  if (!Pattern.empty() && Pattern.back() == '*')
    return Name.compare(0, Pattern.size() - 1, Pattern, 0,
                        Pattern.size() - 1) == 0;
  return Pattern == Name;
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

bool FaultRegistry::parseSpec(const std::string &Spec,
                              std::vector<FaultRule> &Out,
                              std::string *Error) {
  auto Fail = [&](const std::string &What) {
    if (Error)
      *Error = What;
    return false;
  };
  std::vector<FaultRule> Rules;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(';', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Entry = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue; // tolerate empty segments ("a=p1;;b=n2")
    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos || Eq == 0)
      return Fail("entry '" + Entry + "' is not 'name=mode[:arg]'");
    FaultRule R;
    R.Pattern = Entry.substr(0, Eq);
    std::string Mode = Entry.substr(Eq + 1);
    size_t Colon = Mode.find(':');
    if (Colon != std::string::npos) {
      std::string ArgText = Mode.substr(Colon + 1);
      Mode.resize(Colon);
      char *EndPtr = nullptr;
      R.Arg = std::strtoull(ArgText.c_str(), &EndPtr, 10);
      if (ArgText.empty() || *EndPtr != '\0')
        return Fail("bad arg '" + ArgText + "' in '" + Entry + "'");
      R.HasArg = true;
    }
    if (Mode == "always") {
      R.Mode = FaultMode::Always;
    } else if (!Mode.empty() && Mode[0] == 'p') {
      char *EndPtr = nullptr;
      R.P = std::strtod(Mode.c_str() + 1, &EndPtr);
      if (EndPtr == Mode.c_str() + 1 || *EndPtr != '\0' || R.P < 0.0 ||
          R.P > 1.0)
        return Fail("bad probability in '" + Entry + "' (want p0..p1)");
      R.Mode = FaultMode::Prob;
    } else if (!Mode.empty() && (Mode[0] == 'n' || Mode[0] == 'k')) {
      char *EndPtr = nullptr;
      R.N = std::strtoull(Mode.c_str() + 1, &EndPtr, 10);
      if (EndPtr == Mode.c_str() + 1 || *EndPtr != '\0' || R.N == 0)
        return Fail("bad ordinal in '" + Entry + "' (want a positive int)");
      R.Mode = Mode[0] == 'n' ? FaultMode::EveryNth : FaultMode::OneShot;
    } else {
      return Fail("unknown mode '" + Mode + "' in '" + Entry + "'");
    }
    Rules.push_back(std::move(R));
  }
  if (Rules.empty())
    return Fail("empty spec");
  Out = std::move(Rules);
  return true;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

/// Registry-owned state of one named point. Node-based map keeps the
/// address stable, so FaultSite handles cache the pointer.
struct PointState {
  std::string Name;
  uint64_t Hits = 0;
  uint64_t Fires = 0;
  uint64_t PointSeed = 0;           ///< mix of registry seed and name hash
  const FaultRule *Rule = nullptr;  ///< bound rule; null = unmatched
  uint32_t BoundEpoch = 0;          ///< epoch the binding was made under
  TelemetryCounter *Mirror = nullptr; ///< "fault.<name>" registry counter
};

} // namespace

struct FaultRegistry::Impl {
  mutable std::mutex Mu;
  std::vector<FaultRule> Rules; ///< armed spec, in spec order
  uint64_t Seed = 0;
  /// Monotonic arm counter. The published FaultEpoch drops to 0 on
  /// disarm, so the next arm must NOT reuse a previously published value:
  /// a PointState bound under the earlier arm would keep its stale seed
  /// and a dangling pointer into the replaced Rules vector.
  uint32_t EpochCounter = 0;
  std::map<std::string, PointState> Points;
};

FaultRegistry::FaultRegistry() : I(new Impl) {}
FaultRegistry::~FaultRegistry() { delete I; }

FaultRegistry &FaultRegistry::global() {
  static FaultRegistry R;
  return R;
}

bool FaultRegistry::arm(const std::string &Spec, uint64_t Seed) {
  std::vector<FaultRule> Rules;
  std::string Error;
  if (!parseSpec(Spec, Rules, &Error)) {
    std::fprintf(stderr, "jitml: JITML_FAULTS ignored: %s\n", Error.c_str());
    return false;
  }
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Rules = std::move(Rules);
  I->Seed = Seed;
  for (auto &[Name, P] : I->Points) {
    P.Hits = P.Fires = 0; // fresh schedule: ordinals restart at 1
    if (P.Mirror)
      P.Mirror->reset();
  }
  // A fresh nonzero epoch arms the fast path and invalidates every rule
  // binding. Epochs are plentiful enough (2^32) that skipping 0 is the
  // only wrap concern worth handling.
  if (++I->EpochCounter == 0)
    ++I->EpochCounter;
  detail::FaultEpoch.store(I->EpochCounter, std::memory_order_relaxed);
  return true;
}

void FaultRegistry::disarm() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  detail::FaultEpoch.store(0, std::memory_order_relaxed);
  I->Rules.clear();
}

uint64_t FaultRegistry::seed() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->Seed;
}

std::vector<FaultPointStats> FaultRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  std::vector<FaultPointStats> Out;
  Out.reserve(I->Points.size());
  for (const auto &[Name, P] : I->Points)
    Out.push_back({Name, P.Hits, P.Fires});
  return Out; // std::map iteration is already name-sorted
}

uint64_t FaultRegistry::hits(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Points.find(Name);
  return It == I->Points.end() ? 0 : It->second.Hits;
}

uint64_t FaultRegistry::fires(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Points.find(Name);
  return It == I->Points.end() ? 0 : It->second.Fires;
}

void FaultRegistry::resetCounters() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  for (auto &[Name, P] : I->Points) {
    P.Hits = P.Fires = 0;
    if (P.Mirror)
      P.Mirror->reset();
  }
}

bool FaultRegistry::fireSite(FaultSite &Site, uint64_t *ArgOut) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  uint32_t Epoch = detail::FaultEpoch.load(std::memory_order_relaxed);
  if (Epoch == 0)
    return false; // raced a disarm between the fast-path check and here
  PointState *P = static_cast<PointState *>(Site.State);
  if (!P) {
    P = &I->Points[Site.Name];
    if (P->Name.empty())
      P->Name = Site.Name;
    Site.State = P; // written under Mu; read under Mu on every later hit
  }
  if (P->BoundEpoch != Epoch) {
    P->Rule = nullptr;
    for (const FaultRule &R : I->Rules)
      if (patternMatches(R.Pattern, P->Name)) {
        P->Rule = &R;
        break;
      }
    P->PointSeed = mix64(I->Seed ^ hashName(P->Name));
    P->BoundEpoch = Epoch;
  }
  uint64_t Ordinal = ++P->Hits;
  if (!P->Rule)
    return false;
  bool Fire = false;
  switch (P->Rule->Mode) {
  case FaultMode::Always:
    Fire = true;
    break;
  case FaultMode::Prob:
    // Pure function of (seed, name, ordinal): the replay contract.
    Fire = unitDouble(mix64(P->PointSeed + Ordinal)) < P->Rule->P;
    break;
  case FaultMode::EveryNth:
    Fire = Ordinal % P->Rule->N == 0;
    break;
  case FaultMode::OneShot:
    Fire = Ordinal == P->Rule->N;
    break;
  }
  if (!Fire)
    return false;
  ++P->Fires;
  if (!P->Mirror)
    P->Mirror = &MetricRegistry::global().counter("fault." + P->Name);
  P->Mirror->add();
  if (ArgOut && P->Rule->HasArg)
    *ArgOut = P->Rule->Arg;
  return true;
}

//===----------------------------------------------------------------------===//
// Environment arming
//===----------------------------------------------------------------------===//

namespace {

/// Arms from JITML_FAULTS/JITML_FAULT_SEED before main. Lives in this TU,
/// so the epoch word (constant-initialized) is ready first.
struct EnvArm {
  EnvArm() {
    const char *Spec = std::getenv("JITML_FAULTS");
    if (!Spec || !*Spec)
      return;
    uint64_t Seed = 0;
    if (const char *S = std::getenv("JITML_FAULT_SEED"))
      Seed = std::strtoull(S, nullptr, 10);
    FaultRegistry::global().arm(Spec, Seed);
  }
};
EnvArm ArmFromEnv;

} // namespace
