//===- support/Statistics.h - Mean / stddev / confidence interval -*-C++-*-===//
///
/// \file
/// Running statistics used by the experiment harness. The paper reports the
/// average of 30 JVM invocations with a 95% confidence interval; this class
/// provides exactly that computation (Welford's online algorithm plus the
/// normal-approximation CI used for n >= 30).
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_STATISTICS_H
#define JITML_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jitml {

/// Accumulates samples and reports mean, standard deviation, and the
/// half-width of a 95% confidence interval on the mean.
class RunningStat {
public:
  void add(double X);

  size_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Half-width of the 95% CI on the mean (t-distribution for small n,
  /// normal approximation beyond the table). NaN for fewer than two
  /// samples: one sample has no dispersion estimate, and a 0-width CI
  /// would falsely claim certainty.
  double ci95HalfWidth() const;
  /// Extremes of the samples seen so far. NaN for an empty stat — a 0.0
  /// sentinel would be indistinguishable from a real 0.0 sample.
  double min() const;
  double max() const;

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Convenience: statistics of a whole vector at once.
RunningStat summarize(const std::vector<double> &Xs);

/// Geometric mean of strictly positive values; returns 0 for empty input.
double geometricMean(const std::vector<double> &Xs);

/// One named monotonic counter, as reported by subsystems (e.g. the
/// bridge's request/timeout/cache counters).
struct CounterRow {
  std::string Name;
  uint64_t Value = 0;
};

/// Renders counter rows as an aligned two-column text table so experiment
/// reports can include subsystem overhead next to the timing statistics.
std::string formatCounterTable(const std::vector<CounterRow> &Rows);

} // namespace jitml

#endif // JITML_SUPPORT_STATISTICS_H
