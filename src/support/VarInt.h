//===- support/VarInt.h - LEB128 variable-length integers ------*- C++ -*-===//
///
/// \file
/// Unsigned/zig-zag-signed LEB128 coding. The custom binary archive format
/// (paper section 4.2) needs a compact on-disk representation: most counters
/// (invocation counts, feature values, signature ids) are small, so
/// variable-length coding shrinks archives considerably.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_VARINT_H
#define JITML_SUPPORT_VARINT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jitml {

/// Appends an unsigned LEB128 encoding of \p Value to \p Out.
void encodeVarUInt(std::vector<uint8_t> &Out, uint64_t Value);

/// Appends a zig-zag signed LEB128 encoding of \p Value to \p Out.
void encodeVarInt(std::vector<uint8_t> &Out, int64_t Value);

/// Cursor over a byte buffer for decoding. Decoding past the end or hitting
/// a malformed encoding sets the error flag and yields zeros from then on;
/// callers check ok() once after a batch of reads.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Buf)
      : Data(Buf.data()), Size(Buf.size()) {}

  uint64_t readVarUInt();
  int64_t readVarInt();
  uint8_t readByte();
  /// Reads \p N raw bytes into \p Out; on underrun sets the error flag.
  bool readBytes(uint8_t *Out, size_t N);

  bool ok() const { return !Error; }
  bool atEnd() const { return Pos == Size; }
  size_t position() const { return Pos; }
  size_t remaining() const { return Size - Pos; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Error = false;
};

} // namespace jitml

#endif // JITML_SUPPORT_VARINT_H
