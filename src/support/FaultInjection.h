//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
///
/// \file
/// A process-wide registry of named fault points for chaos testing the
/// async compilation stack. Every error path that production code already
/// handles — a bridge timeout, a full compilation queue, a stale install,
/// a failing trace sink — carries a JITML_FAULT_POINT("name") check that
/// lets a test (or JITML_FAULTS=<spec> in the environment) force that
/// path deterministically, so the degradation behavior the design docs
/// promise is provable instead of incidental.
///
/// Disabled cost: with no spec armed, a fault point is one relaxed load of
/// a process-wide epoch word and a predictably-not-taken branch — the same
/// gating discipline as TraceEmitter::enabled(). The per-point static
/// state is not even constructed until the first armed hit.
///
/// Spec grammar (JITML_FAULTS, or FaultRegistry::arm in tests):
///
///   spec  := entry (';' entry)*
///   entry := pattern '=' mode (':' arg)?
///   mode  := 'always'                 every hit
///          | 'p' float                Bernoulli per hit, e.g. p0.25
///          | 'n' int                  every-Nth hit (N, 2N, 3N, ...)
///          | 'k' int                  one shot, exactly the Kth hit
///   arg   := uint64                   site-specific (e.g. a delay in ms)
///
/// A pattern is an exact point name or a 'prefix*' glob; the first
/// matching entry (in spec order) governs a point.
///
/// Replay contract: whether a hit fires is a pure function of
/// (JITML_FAULT_SEED, point name, hit ordinal). Ordinals are assigned per
/// point in hit order, starting at 1 on every arm(). Single-threaded
/// scenarios therefore replay bit-identically from the same seed + spec;
/// under concurrency the SET of firing ordinals per point is still
/// identical, only their assignment to threads may vary.
///
/// Counting: every armed hit and fire is counted per point, and fires are
/// mirrored into MetricRegistry as "fault.<name>" counters so chaos tests
/// can check subsystem telemetry against injected fault counts.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_FAULTINJECTION_H
#define JITML_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace jitml {

namespace detail {
/// Nonzero while a fault spec is armed; bumped to a fresh value on every
/// arm() so point sites know to re-resolve their rule binding.
extern std::atomic<uint32_t> FaultEpoch;
} // namespace detail

/// The disabled fast path: one relaxed load, one predictable branch.
inline bool faultsArmed() {
  return detail::FaultEpoch.load(std::memory_order_relaxed) != 0;
}

/// How an armed rule chooses which hit ordinals fire.
enum class FaultMode : uint8_t {
  Always,   ///< every hit
  Prob,     ///< Bernoulli per hit, derived from (seed, name, ordinal)
  EveryNth, ///< ordinals N, 2N, 3N, ...
  OneShot,  ///< exactly ordinal K
};

/// One parsed spec entry.
struct FaultRule {
  std::string Pattern;  ///< exact name or 'prefix*' glob
  FaultMode Mode = FaultMode::Always;
  double P = 0.0;       ///< Prob: firing probability in [0, 1]
  uint64_t N = 1;       ///< EveryNth period / OneShot ordinal (>= 1)
  uint64_t Arg = 0;     ///< site-specific argument (e.g. delay ms)
  bool HasArg = false;  ///< true when the entry carried ':arg'
};

/// Counters for one fault point (snapshot via FaultRegistry::snapshot).
struct FaultPointStats {
  std::string Name;
  uint64_t Hits = 0;  ///< armed executions of the point
  uint64_t Fires = 0; ///< hits the schedule turned into faults
};

class FaultSite;

/// Process-wide fault-point registry. arm()/disarm() are rare control
/// operations; point evaluation serializes on one mutex, which is fine —
/// it only runs while a chaos spec is armed.
class FaultRegistry {
public:
  /// The registry every JITML_FAULT_POINT reports to. Reads JITML_FAULTS
  /// and JITML_FAULT_SEED once at process start.
  static FaultRegistry &global();

  /// Parses and arms \p Spec with \p Seed, resetting every point's
  /// hit/fire counters (a fresh schedule). Returns false — leaving the
  /// previous state untouched — when the spec does not parse.
  bool arm(const std::string &Spec, uint64_t Seed);

  /// Stops all injection. Counters keep their values for inspection.
  void disarm();

  bool armed() const { return faultsArmed(); }
  uint64_t seed() const;

  /// Parses \p Spec without arming. On failure returns false and, when
  /// \p Error is non-null, a one-line diagnostic.
  static bool parseSpec(const std::string &Spec, std::vector<FaultRule> &Out,
                        std::string *Error = nullptr);

  /// Name-sorted counters of every point hit while armed.
  std::vector<FaultPointStats> snapshot() const;
  /// Convenience lookups; 0 for a never-hit point.
  uint64_t hits(const std::string &Name) const;
  uint64_t fires(const std::string &Name) const;
  /// Zeroes every point's counters (the schedule keeps running).
  void resetCounters();

  /// Point evaluation (the macro's slow path); not for direct use.
  bool fireSite(FaultSite &Site, uint64_t *ArgOut);

  FaultRegistry(const FaultRegistry &) = delete;
  FaultRegistry &operator=(const FaultRegistry &) = delete;

private:
  FaultRegistry();
  ~FaultRegistry();
  struct Impl;
  Impl *I;
};

/// Per-expansion handle of one named fault point. Constructed lazily (the
/// macro's static local) on the first armed hit; state is keyed by name in
/// the registry, so several expansions with one name share counters and
/// schedule.
class FaultSite {
public:
  explicit FaultSite(const char *Name) : Name(Name) {}

  /// Counts the hit and evaluates the armed schedule. When firing and the
  /// rule carries an argument, \p ArgOut (if non-null) receives it;
  /// otherwise \p ArgOut keeps the caller's default.
  bool fire(uint64_t *ArgOut = nullptr) {
    return FaultRegistry::global().fireSite(*this, ArgOut);
  }

  const char *name() const { return Name; }

private:
  friend class FaultRegistry;
  const char *Name;
  void *State = nullptr; ///< registry-owned per-name state; set under its mutex
};

/// Sleeps \p Ms milliseconds — the helper behind delay/stall fault points,
/// so instrumented files need no <thread> include.
void faultDelayMs(uint64_t Ms);

} // namespace jitml

/// True when the named fault point fires this hit. Disabled cost: one
/// relaxed load and a not-taken branch; the static site is not constructed
/// until the first armed evaluation.
#define JITML_FAULT_POINT(NAME)                                               \
  (jitml::faultsArmed() && ([]() -> jitml::FaultSite & {                      \
                             static jitml::FaultSite Site(NAME);              \
                             return Site;                                     \
                           }())                                               \
                               .fire())

/// Like JITML_FAULT_POINT, but a firing rule with ':arg' overwrites
/// \p ARGVAR (a uint64_t lvalue preset to the caller's default).
#define JITML_FAULT_POINT_ARG(NAME, ARGVAR)                                   \
  (jitml::faultsArmed() && ([]() -> jitml::FaultSite & {                      \
                             static jitml::FaultSite Site(NAME);              \
                             return Site;                                     \
                           }())                                               \
                               .fire(&(ARGVAR)))

#endif // JITML_SUPPORT_FAULTINJECTION_H
