//===- support/SaturatingCounter.h - Saturating counters -------*- C++ -*-===//
///
/// \file
/// Saturating counters used for the distribution features. Section 4.1.2:
/// "Distributions are recorded by incrementing counters until they reach
/// their maximum capacity" — type distributions use 16-bit counters and
/// operation distributions use 8-bit counters, which keeps the collection
/// pass simple and the storage compact.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SUPPORT_SATURATINGCOUNTER_H
#define JITML_SUPPORT_SATURATINGCOUNTER_H

#include <cstdint>
#include <limits>

namespace jitml {

/// A counter that sticks at the maximum of its underlying type.
template <typename IntT> class SaturatingCounter {
public:
  static constexpr IntT Max = std::numeric_limits<IntT>::max();

  void increment(uint64_t By = 1) {
    if (By >= (uint64_t)(Max - Value))
      Value = Max;
    else
      Value = (IntT)(Value + By);
  }

  IntT value() const { return Value; }
  bool saturated() const { return Value == Max; }
  void reset() { Value = 0; }

private:
  IntT Value = 0;
};

using Sat8 = SaturatingCounter<uint8_t>;
using Sat16 = SaturatingCounter<uint16_t>;

} // namespace jitml

#endif // JITML_SUPPORT_SATURATINGCOUNTER_H
