//===- collect/Archive.cpp ------------------------------------------------===//

#include "collect/Archive.h"

#include "support/VarInt.h"

#include <cmath>
#include <cstdio>

using namespace jitml;

namespace {

constexpr uint8_t Magic[4] = {'J', 'M', 'L', 'A'};
constexpr uint8_t Version = 1;

} // namespace

std::vector<uint8_t>
jitml::encodeArchive(const StringInterner &Dict,
                     const std::vector<CollectionRecord> &Recs) {
  std::vector<uint8_t> Out;
  Out.reserve(64 + Recs.size() * 96); // silences GCC's memmove analysis too
  Out.insert(Out.end(), Magic, Magic + 4);
  Out.push_back(Version);
  encodeVarUInt(Out, NumFeatures);
  encodeVarUInt(Out, Dict.size());
  for (const std::string &S : Dict.strings()) {
    encodeVarUInt(Out, S.size());
    Out.insert(Out.end(), S.begin(), S.end());
  }
  encodeVarUInt(Out, Recs.size());
  for (const CollectionRecord &R : Recs) {
    encodeVarUInt(Out, R.SignatureId);
    encodeVarUInt(Out, (uint64_t)R.Level);
    encodeVarUInt(Out, R.ModifierBits);
    encodeVarUInt(Out, (uint64_t)std::llround(R.CompileCycles));
    encodeVarUInt(Out, (uint64_t)std::llround(R.RunCycles));
    encodeVarUInt(Out, R.Invocations);
    encodeVarUInt(Out, R.DiscardedSamples);
    for (unsigned F = 0; F < NumFeatures; ++F)
      encodeVarUInt(Out, R.Features.get(F));
  }
  return Out;
}

bool jitml::decodeArchive(const std::vector<uint8_t> &Buffer,
                          ArchiveData &Out) {
  Out = ArchiveData();
  ByteReader Reader(Buffer);
  uint8_t Head[4];
  if (!Reader.readBytes(Head, 4) || Head[0] != Magic[0] ||
      Head[1] != Magic[1] || Head[2] != Magic[2] || Head[3] != Magic[3])
    return false;
  if (Reader.readByte() != Version)
    return false;
  if (Reader.readVarUInt() != NumFeatures)
    return false;
  uint64_t DictCount = Reader.readVarUInt();
  if (!Reader.ok() || DictCount > 1u << 24)
    return false;
  Out.Signatures.reserve(DictCount);
  for (uint64_t I = 0; I < DictCount; ++I) {
    uint64_t Len = Reader.readVarUInt();
    if (!Reader.ok() || Len > Reader.remaining()) {
      Out = ArchiveData();
      return false;
    }
    std::string S(Len, '\0');
    Reader.readBytes(reinterpret_cast<uint8_t *>(S.data()), Len);
    Out.Signatures.push_back(std::move(S));
  }
  uint64_t RecCount = Reader.readVarUInt();
  if (!Reader.ok() || RecCount > 1u << 28) {
    Out = ArchiveData();
    return false;
  }
  Out.Records.reserve(RecCount);
  for (uint64_t I = 0; I < RecCount; ++I) {
    CollectionRecord R;
    R.SignatureId = (uint32_t)Reader.readVarUInt();
    R.Level = (OptLevel)Reader.readVarUInt();
    R.ModifierBits = Reader.readVarUInt();
    R.CompileCycles = (double)Reader.readVarUInt();
    R.RunCycles = (double)Reader.readVarUInt();
    R.Invocations = Reader.readVarUInt();
    R.DiscardedSamples = Reader.readVarUInt();
    for (unsigned F = 0; F < NumFeatures; ++F)
      R.Features.set(F, (uint32_t)Reader.readVarUInt());
    if (!Reader.ok() || R.SignatureId >= Out.Signatures.size() ||
        (unsigned)R.Level >= NumOptLevels) {
      Out = ArchiveData();
      return false;
    }
    Out.Records.push_back(std::move(R));
  }
  return Reader.ok();
}

bool jitml::writeArchiveFile(const std::string &Path,
                             const StringInterner &Dict,
                             const std::vector<CollectionRecord> &Recs) {
  std::vector<uint8_t> Data = encodeArchive(Dict, Recs);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Data.data(), 1, Data.size(), F);
  std::fclose(F);
  return Written == Data.size();
}

bool jitml::readArchiveFile(const std::string &Path, ArchiveData &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  if (Size < 0) {
    std::fclose(F);
    return false;
  }
  std::vector<uint8_t> Data((size_t)Size);
  size_t Read = std::fread(Data.data(), 1, Data.size(), F);
  std::fclose(F);
  if (Read != Data.size())
    return false;
  return decodeArchive(Data, Out);
}
