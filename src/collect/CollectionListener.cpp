//===- collect/CollectionListener.cpp -------------------------------------===//

#include "collect/CollectionListener.h"

using namespace jitml;

void CollectionListener::onMethodEnter(uint32_t MethodIndex,
                                       const TscSample &Now) {
  auto It = Open.find(MethodIndex);
  if (It == Open.end() || !It->second.Active)
    return; // not compiled-for-collection yet
  It->second.EnterStack.push_back(Now);
}

void CollectionListener::onMethodExit(uint32_t MethodIndex,
                                      const TscSample &Now,
                                      bool Exceptional) {
  (void)Exceptional; // exceptional exits are timed like normal ones
  auto It = Open.find(MethodIndex);
  if (It == Open.end() || !It->second.Active ||
      It->second.EnterStack.empty())
    return;
  TscSample Enter = It->second.EnterStack.back();
  It->second.EnterStack.pop_back();
  // rdtscp gave us the core id with each read: "checking that the
  // identifier is the same in the enter and exit measurements ... and
  // discarding the measurement when they are not, avoids the type of
  // imprecision caused by TSC drift".
  if (Enter.CoreId != Now.CoreId || Now.Tsc < Enter.Tsc) {
    ++It->second.Rec.DiscardedSamples;
    ++TotalDiscarded;
    return;
  }
  It->second.Rec.RunCycles += (double)(Now.Tsc - Enter.Tsc);
  ++It->second.Rec.Invocations;
}

void CollectionListener::onCompile(const CompileEvent &Event) {
  OpenRecord &O = Open[Event.MethodIndex];
  // A new compilation closes the record of the previous one.
  if (O.Active && O.Rec.Invocations > 0) {
    Records.push_back(O.Rec);
    if (OnRecordClosed)
      OnRecordClosed(O.Rec);
  }
  O.Rec = CollectionRecord();
  O.Rec.SignatureId =
      Signatures.intern(Prog.signatureOf(Event.MethodIndex));
  O.Rec.Level = Event.Level;
  O.Rec.ModifierBits = Event.Modifier.raw();
  O.Rec.Features = Event.Features;
  O.Rec.CompileCycles = Event.CompileCycles;
  O.EnterStack.clear();
  O.Active = true;
}

void CollectionListener::finalize() {
  for (auto &[Method, O] : Open) {
    (void)Method;
    if (O.Active && O.Rec.Invocations > 0) {
      Records.push_back(O.Rec);
      if (OnRecordClosed)
        OnRecordClosed(O.Rec);
    }
    O.Active = false;
  }
}
