//===- collect/Archive.h - Compact binary archive format --------*- C++ -*-===//
///
/// \file
/// The "customized binary archive format to facilitate large-scale data
/// collection" (paper contribution 2): a magic/version header, a method
/// signature dictionary ("the creation of a dictionary of method
/// signatures is key for a compact representation"), then LEB128-coded
/// records. Everything integral is varint-coded; feature vectors compress
/// well because most of the 71 counters are zero or tiny.
///
/// Layout:
///   magic "JMLA" | version u8 | featureCount varint
///   dictCount varint | dictCount x (len varint, bytes)
///   recordCount varint | records...
/// Record:
///   sigId, level, modifierBits, compileCycles, runCycles, invocations,
///   discarded, 71 feature values — all varuint.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_COLLECT_ARCHIVE_H
#define JITML_COLLECT_ARCHIVE_H

#include "collect/CollectionRecord.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jitml {

/// An archive in memory: dictionary plus records.
struct ArchiveData {
  std::vector<std::string> Signatures;
  std::vector<CollectionRecord> Records;
};

/// Serializes \p Dict and \p Records into the binary archive format.
std::vector<uint8_t> encodeArchive(const StringInterner &Dict,
                                   const std::vector<CollectionRecord> &Recs);

/// Parses an archive buffer. Returns false (and leaves \p Out empty) on a
/// malformed buffer — wrong magic, truncated data, or bad version.
bool decodeArchive(const std::vector<uint8_t> &Buffer, ArchiveData &Out);

/// File convenience wrappers. Write returns false on I/O failure.
bool writeArchiveFile(const std::string &Path, const StringInterner &Dict,
                      const std::vector<CollectionRecord> &Recs);
bool readArchiveFile(const std::string &Path, ArchiveData &Out);

} // namespace jitml

#endif // JITML_COLLECT_ARCHIVE_H
