//===- collect/CollectionRecord.h - One compilation experiment --*- C++ -*-===//
///
/// \file
/// The unit of collected data: one compilation of one method with one
/// compilation-plan modifier, together with the profile gathered while
/// that compilation was the method's active body. These records feed the
/// ranking function V_i = R_i/I_i + C_i/T_h (Eq. 2).
///
//===----------------------------------------------------------------------===//

#ifndef JITML_COLLECT_COLLECTIONRECORD_H
#define JITML_COLLECT_COLLECTIONRECORD_H

#include "features/FeatureVector.h"
#include "opt/Plan.h"

#include <cstdint>

namespace jitml {

struct CollectionRecord {
  /// Signature-dictionary id of the method (archives store strings once).
  uint32_t SignatureId = 0;
  OptLevel Level = OptLevel::Cold;
  /// Raw 58-bit enabled-mask of the modifier used for this compilation.
  uint64_t ModifierBits = 0;
  FeatureVector Features;
  /// Compile effort (C_i) in simulated cycles.
  double CompileCycles = 0.0;
  /// Accumulated run time (R_i) in TSC ticks across valid samples.
  double RunCycles = 0.0;
  /// Invocation counter (I_i): number of valid enter/exit samples.
  uint64_t Invocations = 0;
  /// Samples discarded because enter/exit landed on different cores
  /// (TSC drift protection, section 4.2).
  uint64_t DiscardedSamples = 0;
};

} // namespace jitml

#endif // JITML_COLLECT_COLLECTIONRECORD_H
