//===- collect/CollectionListener.h - Profiling instrumentation -*- C++ -*-===//
///
/// \file
/// The data-collection instrumentation of section 4.2: per-invocation
/// enter/exit timing through the simulated rdtscp, with samples whose
/// enter and exit landed on different cores discarded (TSC drift), staged
/// entirely in memory — "data gathered in collection mode is stored in
/// carefully designed data structures in memory and is only transferred to
/// compact binary archives after the execution of the application
/// terminates".
///
//===----------------------------------------------------------------------===//

#ifndef JITML_COLLECT_COLLECTIONLISTENER_H
#define JITML_COLLECT_COLLECTIONLISTENER_H

#include "collect/CollectionRecord.h"
#include "runtime/VirtualMachine.h"
#include "support/StringInterner.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace jitml {

class CollectionListener : public JitEventListener {
public:
  explicit CollectionListener(const Program &P) : Prog(P) {}

  void onMethodEnter(uint32_t MethodIndex, const TscSample &Now) override;
  void onMethodExit(uint32_t MethodIndex, const TscSample &Now,
                    bool Exceptional) override;
  void onCompile(const CompileEvent &Event) override;

  /// Closes all open records. Call once after the application finished.
  void finalize();

  /// Invoked whenever a record closes (a recompilation supersedes it or
  /// finalize() runs). The guided search feeds its credit assignment from
  /// this hook.
  void setRecordClosedHook(std::function<void(const CollectionRecord &)> H) {
    OnRecordClosed = std::move(H);
  }

  const std::vector<CollectionRecord> &records() const { return Records; }
  const StringInterner &dictionary() const { return Signatures; }
  uint64_t discardedSamples() const { return TotalDiscarded; }

private:
  struct OpenRecord {
    CollectionRecord Rec;
    /// Enter timestamps of in-flight activations (recursion nests).
    std::vector<TscSample> EnterStack;
    bool Active = false;
  };

  const Program &Prog;
  StringInterner Signatures;
  std::unordered_map<uint32_t, OpenRecord> Open; ///< per method
  std::vector<CollectionRecord> Records;
  std::function<void(const CollectionRecord &)> OnRecordClosed;
  uint64_t TotalDiscarded = 0;
};

} // namespace jitml

#endif // JITML_COLLECT_COLLECTIONLISTENER_H
