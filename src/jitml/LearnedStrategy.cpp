//===- jitml/LearnedStrategy.cpp ------------------------------------------===//

#include "jitml/LearnedStrategy.h"

using namespace jitml;

PlanModifier
LearnedStrategyProvider::modifierFor(OptLevel Level,
                                     const FeatureVector &Features) {
  const LevelModel &LM = Models.Levels[(unsigned)Level];
  if (!LM.Valid)
    return PlanModifier(); // original plan for uncovered levels
  ++Predictions;
  std::vector<double> X = LM.Scale.apply(Features);
  int32_t Label = LM.Model.predict(X);
  uint64_t Bits = 0;
  if (!LM.Labels.modifierFor(Label, Bits))
    return PlanModifier(); // unknown label: fail safe to the null modifier
  return PlanModifier::fromRaw(Bits);
}

std::optional<uint64_t> LearnedStrategyProvider::predictModifier(
    OptLevel Level, const std::vector<double> &RawFeatures) {
  if (RawFeatures.size() != NumFeatures)
    return std::nullopt;
  FeatureVector F;
  for (unsigned I = 0; I < NumFeatures; ++I)
    F.set(I, (uint32_t)RawFeatures[I]);
  return modifierFor(Level, F).raw();
}

VirtualMachine::ModifierHook
jitml::makeLearnedHook(LearnedStrategyProvider &P) {
  return [&P](uint32_t MethodIndex, OptLevel Level,
              const FeatureVector &Features) {
    (void)MethodIndex; // prediction is purely feature-driven (section 7)
    return P.modifierFor(Level, Features);
  };
}

VirtualMachine::ModifierHook jitml::makeBridgedHook(ModelClient &Client) {
  return [&Client](uint32_t MethodIndex, OptLevel Level,
                   const FeatureVector &Features) {
    (void)MethodIndex;
    std::optional<uint64_t> Bits = Client.requestModifier(Level, Features);
    return Bits ? PlanModifier::fromRaw(*Bits) : PlanModifier();
  };
}

VirtualMachine::ModifierHook
jitml::makeResilientHook(ResilientModelClient &Client) {
  return [&Client](uint32_t MethodIndex, OptLevel Level,
                   const FeatureVector &Features) {
    (void)MethodIndex;
    std::optional<uint64_t> Bits = Client.requestModifier(Level, Features);
    return Bits ? PlanModifier::fromRaw(*Bits) : PlanModifier();
  };
}

AsyncCompilePipeline::BatchModifierFn
jitml::makeResilientBatchHook(ResilientModelClient &Client) {
  return [&Client](const std::vector<AsyncCompilePipeline::BatchPredictItem>
                       &Items) {
    std::vector<ResilientModelClient::BatchRequest> Requests(Items.size());
    for (size_t I = 0; I < Items.size(); ++I) {
      Requests[I].Level = Items[I].Level;
      Requests[I].Features = Items[I].Features;
    }
    std::vector<std::optional<uint64_t>> Bits =
        Client.requestModifierBatch(Requests);
    std::vector<PlanModifier> Modifiers(Items.size());
    for (size_t I = 0; I < Bits.size() && I < Modifiers.size(); ++I)
      if (Bits[I])
        Modifiers[I] = PlanModifier::fromRaw(*Bits[I]);
    return Modifiers;
  };
}
