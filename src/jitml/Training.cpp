//===- jitml/Training.cpp -------------------------------------------------===//

#include "jitml/Training.h"

#include "collect/CollectionListener.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

using namespace jitml;

namespace {

/// One collection run of \p Spec with one search strategy.
IntermediateDataSet collectOnce(const WorkloadSpec &Spec,
                                const CollectConfig &Config,
                                SearchStrategy Strategy) {
  Program P = buildWorkload(Spec);

  StrategyConfig SC;
  SC.Strategy = Strategy;
  SC.ModifiersPerLevel = Config.ModifiersPerLevel;
  SC.UsesPerModifier = Config.UsesPerModifier;
  SC.MaxRecompilesPerMethod = Config.MaxRecompilesPerMethod;
  SC.Seed = mix64(Config.Seed ^ Spec.Seed ^ (uint64_t)Strategy);
  StrategyControl Control(SC);

  VirtualMachine::Config Cfg;
  Cfg.Control.CollectMode = true;
  Cfg.Control.ExplorationTargetCycles = Config.ExplorationTargetCycles;
  Cfg.Control.ExplorationMinInvocations = Config.ExplorationMinInvocations;
  // Stretch only the cold->warm window: cold is otherwise left almost
  // unexplored (promotion beats the first exploration recompile), while
  // warm->hot must stay reachable within the run.
  for (unsigned LC = 0; LC < 3; ++LC)
    Cfg.Control.InvocationTriggers[1][LC] *= Config.DwellMultiplier;
  Cfg.Control.CycleTriggers[1] *= Config.DwellMultiplier;
  Cfg.InstrumentMethods = true;
  Cfg.Clock.Seed = mix64(Config.Seed ^ Spec.Seed);
  VirtualMachine VM(P, Cfg);

  CollectionListener Listener(P);
  VM.setListener(&Listener);
  if (Strategy == SearchStrategy::Guided) {
    // Future-work search (section 5): completed experiments feed their
    // Eq. 2 ranking value back so new modifiers concentrate on promising
    // regions of the 2^58 space.
    Listener.setRecordClosedHook([&Control](const CollectionRecord &Rec) {
      if (Rec.Invocations == 0)
        return;
      Control.noteOutcome(Rec.Level,
                          PlanModifier::fromRaw(Rec.ModifierBits),
                          rankValue(Rec, TriggerTable()));
    });
  }
  VM.setModifierHook([&Control](uint32_t Method, OptLevel Level,
                                const FeatureVector &Features) {
    (void)Features; // exploration picks modifiers blindly; only the
                    // learned mode consults the features
    return Control.modifierFor(Method, Level);
  });
  VM.setRecompileGate([&Control](uint32_t Method) {
    if (Control.methodFrozen(Method) || Control.explorationExhausted())
      return false;
    Control.noteRecompile(Method);
    return true;
  });

  for (unsigned I = 0; I < Config.Iterations; ++I) {
    ExecResult R = VM.run({Value::ofI((int64_t)I)});
    // "Data generated in a session that crashed is not included in the
    // training data sets": an escaped exception voids this run.
    if (R.Exceptional)
      return IntermediateDataSet();
  }
  Listener.finalize();

  // Round-trip through the compact binary archive: the same path a
  // cluster-scale campaign would take through the filesystem.
  std::vector<uint8_t> Bytes =
      encodeArchive(Listener.dictionary(), Listener.records());
  ArchiveData Archive;
  bool Ok = decodeArchive(Bytes, Archive);
  assert(Ok && "self-produced archive must decode");
  (void)Ok;
  return unarchive(Archive, Spec.Code);
}

} // namespace

IntermediateDataSet jitml::collectFromWorkload(const WorkloadSpec &Spec,
                                               const CollectConfig &Config) {
  // "The training data merges the data from the randomized search and the
  // progressive randomized search data collections" (section 8.1). The
  // two strategy runs are independent VM sessions with seeds derived from
  // (Config, Spec, strategy), so they fan out; appending Randomized then
  // Progressive keeps the merged record order identical to the
  // sequential build.
  IntermediateDataSet Parts[2];
  static constexpr SearchStrategy Strategies[2] = {
      SearchStrategy::Randomized, SearchStrategy::Progressive};
  parallelFor(2, [&](size_t S) {
    Parts[S] = collectOnce(Spec, Config, Strategies[S]);
  });
  IntermediateDataSet Merged = std::move(Parts[0]);
  Merged.append(Parts[1]);
  return Merged;
}

IntermediateDataSet jitml::collectWithStrategy(const WorkloadSpec &Spec,
                                               const CollectConfig &Config,
                                               SearchStrategy Strategy) {
  return collectOnce(Spec, Config, Strategy);
}

ModelSet jitml::trainModelSet(const IntermediateDataSet &Data,
                              const std::string &Name,
                              const TrainConfig &Config) {
  ModelSet Set;
  Set.Name = Name;
  // Each learned level ranks, normalizes, and trains from disjoint
  // records into its own Levels[L] slot — an independent shard of the
  // merge -> rank -> normalize -> train pipeline.
  static TelemetryCounter &Levels =
      MetricRegistry::global().counter("train.levels");
  static TelemetryHistogram &LevelUs =
      MetricRegistry::global().histogram("train.level");
  parallelFor(NumOptLevels, [&](size_t L) {
    OptLevel Level = (OptLevel)L;
    if (!isLearnedLevel(Level))
      return;
    uint64_t StartUs = telemetryNowUs();
    std::vector<RankedInstance> Ranked =
        rankRecords(Data, Level, Config.Selection, Config.Triggers);
    if (Ranked.size() < 8)
      return; // not enough signal for this level
    LevelModel &LM = Set.Levels[L];
    LM.Scale = Scaling::fit(Ranked);
    std::vector<NormalizedInstance> Instances =
        normalizeInstances(Ranked, LM.Scale, LM.Labels);
    LM.Model = trainCrammerSinger(Instances, Config.Svm);
    LM.Valid = true;
    uint64_t DurUs = telemetryNowUs() - StartUs;
    Levels.add();
    LevelUs.record(DurUs);
    TraceEmitter &Trace = TraceEmitter::global();
    if (Trace.enabled()) {
      TraceEvent E;
      E.Stage = "train_level";
      E.StartUs = StartUs;
      E.DurUs = DurUs;
      E.Level = (int)L;
      E.Items = (int64_t)Instances.size();
      Trace.record(E);
    }
  });
  return Set;
}

std::vector<ModelSet>
jitml::trainLeaveOneOut(const std::vector<IntermediateDataSet> &PerBenchmark,
                        const TrainConfig &Config) {
  const std::vector<WorkloadSpec> &Training = trainingBenchmarks();
  assert(PerBenchmark.size() == Training.size() &&
         "one data set per training benchmark");
  // The five folds merge and train independently into ordered slots, so
  // H1..H5 come out identical to the sequential loop regardless of
  // JITML_JOBS.
  std::vector<ModelSet> Sets(Training.size());
  static TelemetryCounter &Folds =
      MetricRegistry::global().counter("train.folds");
  static TelemetryHistogram &FoldUs =
      MetricRegistry::global().histogram("train.fold");
  parallelFor(Training.size(), [&](size_t Fold) {
    uint64_t StartUs = telemetryNowUs();
    IntermediateDataSet Merged =
        mergeExcluding(PerBenchmark, {Training[Fold].Code});
    std::string Name = "H" + std::to_string(Fold + 1);
    Sets[Fold] = trainModelSet(Merged, Name, Config);
    Sets[Fold].LeftOutBenchmark = Training[Fold].Code;
    uint64_t DurUs = telemetryNowUs() - StartUs;
    Folds.add();
    FoldUs.record(DurUs);
    TraceEmitter &Trace = TraceEmitter::global();
    if (Trace.enabled()) {
      TraceEvent E;
      E.Stage = "train_fold";
      E.StartUs = StartUs;
      E.DurUs = DurUs;
      E.Method = (int64_t)Fold; // fold index, not a method
      Trace.record(E);
    }
  });
  return Sets;
}
