//===- jitml/Training.h - End-to-end training pipeline ----------*- C++ -*-===//
///
/// \file
/// The full learning workflow of sections 4-6: run a benchmark in
/// collection mode (strategy control + instrumentation), archive the
/// records, unarchive/merge/rank/normalize them, and train one linear SVM
/// per optimization level. Also the leave-one-out driver of section 8.1:
/// "five sets of models were trained with the SVM, each including four
/// benchmarks ... In total, 15 machine-learned models were trained."
///
/// The stages fan out across the JITML_JOBS worker pool at their natural
/// independence boundaries — search strategies within a collection, folds
/// within the leave-one-out study, levels within a model set — with
/// index-derived seeds and ordered result slots, so every artifact is
/// bit-identical to the sequential (JITML_JOBS=1) build.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_JITML_TRAINING_H
#define JITML_JITML_TRAINING_H

#include "jitml/ModelSet.h"
#include "mldata/Merger.h"
#include "mldata/Ranker.h"
#include "modifiers/StrategyControl.h"
#include "svm/Trainer.h"
#include "workloads/Workload.h"

namespace jitml {

/// Knobs for one collection run. The paper's full-scale campaign used
/// L = 2000 modifiers per level over hours of cluster time; the defaults
/// here are scaled so a bench binary finishes in seconds while preserving
/// the merged >> ranked structure of Table 4.
struct CollectConfig {
  /// Application iterations executed per (benchmark, strategy) run.
  unsigned Iterations = 30;
  unsigned ModifiersPerLevel = 48;
  unsigned UsesPerModifier = 3;
  unsigned MaxRecompilesPerMethod = 80;
  /// Target accumulated cycles between exploration recompiles (the
  /// "10 ms" knob, scaled to simulator time).
  double ExplorationTargetCycles = 3e4;
  /// Minimum invocations between exploration recompiles. The paper used
  /// 50 against real invocation counts in the thousands; simulator
  /// invocation counts are ~20x smaller, hence the scaled default.
  uint32_t ExplorationMinInvocations = 10;
  /// Collection-mode promotion dwell: multiplies the cold->warm trigger
  /// so methods spend long enough at cold for the exploration to sample
  /// that level (the paper's campaign ran for hours, naturally dwelling
  /// at every level).
  uint32_t DwellMultiplier = 3;
  uint64_t Seed = 0xc011ec7;
};

/// Runs \p Spec's program under both search strategies (randomized and
/// progressive — the paper found the merged data trains the best models),
/// round-trips the in-memory records through the binary archive format,
/// and returns the merged intermediate data set tagged with Spec.Code.
IntermediateDataSet collectFromWorkload(const WorkloadSpec &Spec,
                                        const CollectConfig &Config);

/// Single-strategy collection (used by the search-strategy ablation; the
/// paper reports that models trained on either strategy alone "did not
/// perform as well as the models that combine both").
IntermediateDataSet collectWithStrategy(const WorkloadSpec &Spec,
                                        const CollectConfig &Config,
                                        SearchStrategy Strategy);

struct TrainConfig {
  SelectionPolicy Selection;     ///< default: <=3 within 95% of best
  TriggerTable Triggers;         ///< T_h values for Eq. 2
  TrainOptions Svm;              ///< default C = 10
};

/// Trains cold/warm/hot models from merged collection data.
ModelSet trainModelSet(const IntermediateDataSet &Data,
                       const std::string &Name, const TrainConfig &Config);

/// The 15-model leave-one-out study: one ModelSet per held-out training
/// benchmark. \p PerBenchmark holds the collection data of the five
/// training benchmarks (tagged with their codes).
std::vector<ModelSet>
trainLeaveOneOut(const std::vector<IntermediateDataSet> &PerBenchmark,
                 const TrainConfig &Config);

} // namespace jitml

#endif // JITML_JITML_TRAINING_H
