//===- jitml/LearnedStrategy.h - Model-driven plan selection ----*- C++ -*-===//
///
/// \file
/// The learning-enabled side of Figure 5: when the compiler is about to
/// optimize a method, the strategy control computes its features, the
/// model renormalizes them with the training-time scaling parameters,
/// predicts a class label, and maps the label back to a 58-bit modifier
/// through the lookup table.
///
/// The provider can be wired to a VirtualMachine directly (in-process) or
/// placed behind the bridge's named-pipe server so the model lives in a
/// separate process, exactly like the paper's prototype.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_JITML_LEARNEDSTRATEGY_H
#define JITML_JITML_LEARNEDSTRATEGY_H

#include "bridge/ModelService.h"
#include "bridge/ResilientClient.h"
#include "jitml/ModelSet.h"
#include "modifiers/Modifier.h"
#include "runtime/VirtualMachine.h"

namespace jitml {

/// Thread-safe: the model set is immutable after construction and the
/// prediction counter is atomic, so the async pipeline's workers may share
/// one provider without locking.
class LearnedStrategyProvider : public ModelBackend {
public:
  explicit LearnedStrategyProvider(ModelSet Models)
      : Models(std::move(Models)) {}

  /// Predicts the modifier for a compilation; the null modifier when the
  /// level has no trained model (veryHot/scorching, or a failed fold).
  PlanModifier modifierFor(OptLevel Level, const FeatureVector &Features);

  /// ModelBackend: same prediction, bridge-flavored inputs.
  std::optional<uint64_t>
  predictModifier(OptLevel Level,
                  const std::vector<double> &RawFeatures) override;

  const ModelSet &models() const { return Models; }

  uint64_t predictions() const {
    return Predictions.load(std::memory_order_relaxed);
  }

private:
  ModelSet Models;
  std::atomic<uint64_t> Predictions{0};
};

/// Hook adapter: plugs a provider into VirtualMachine::setModifierHook.
VirtualMachine::ModifierHook makeLearnedHook(LearnedStrategyProvider &P);

/// Hook adapter that goes through the bridge protocol (the model may be a
/// thread or a separate process on the other end of the transport).
VirtualMachine::ModifierHook makeBridgedHook(ModelClient &Client);

/// Hook adapter over the hardened client: cache-first, deadline-bounded,
/// and falling back to the unmodified hand-tuned plan whenever the model
/// service cannot answer — a slow or dead service degrades compilation
/// quality, never availability.
VirtualMachine::ModifierHook makeResilientHook(ResilientModelClient &Client);

/// Batch-hook adapter for the async pipeline: a worker's whole dequeued
/// backlog travels in one FeatureBatch round trip through the hardened
/// client. Entries the service cannot answer fall back to the unmodified
/// plan individually.
AsyncCompilePipeline::BatchModifierFn
makeResilientBatchHook(ResilientModelClient &Client);

} // namespace jitml

#endif // JITML_JITML_LEARNEDSTRATEGY_H
