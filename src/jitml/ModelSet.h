//===- jitml/ModelSet.h - Per-level learned model bundles -------*- C++ -*-===//
///
/// \file
/// One trained model per optimization level, with its scaling file and
/// label lookup table. "Separate models are trained for three optimization
/// levels (cold, warm, hot) ... a learned model was not generated for
/// scorching. When Testarossa selects scorching, the original compilation
/// plan is used." (section 8.1). veryHot likewise falls back to the
/// original plan in this reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_JITML_MODELSET_H
#define JITML_JITML_MODELSET_H

#include "mldata/Normalizer.h"
#include "opt/Plan.h"
#include "svm/LinearModel.h"

#include <string>

namespace jitml {

/// The learned artifacts for one optimization level.
struct LevelModel {
  bool Valid = false;
  Scaling Scale;   ///< Eq. 3 parameters saved at training time
  LabelMap Labels; ///< label <-> 58-bit modifier lookup table
  LinearModel Model;
};

/// A complete model set (what one leave-one-out fold trains).
struct ModelSet {
  std::string Name;            ///< e.g. "H3"
  std::string LeftOutBenchmark; ///< code of the excluded benchmark
  LevelModel Levels[NumOptLevels];

  bool hasModelFor(OptLevel L) const {
    return Levels[(unsigned)L].Valid;
  }
};

/// The levels the paper trains models for.
inline bool isLearnedLevel(OptLevel L) {
  return L == OptLevel::Cold || L == OptLevel::Warm || L == OptLevel::Hot;
}

} // namespace jitml

#endif // JITML_JITML_MODELSET_H
