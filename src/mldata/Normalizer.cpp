//===- mldata/Normalizer.cpp ----------------------------------------------===//

#include "mldata/Normalizer.h"

#include <bitset>
#include <cstdio>
#include <sstream>

using namespace jitml;

Scaling Scaling::fit(const std::vector<RankedInstance> &Data) {
  Scaling S;
  if (Data.empty())
    return S;
  for (unsigned I = 0; I < NumFeatures; ++I) {
    S.Min[I] = (double)Data.front().Features.get(I);
    S.Max[I] = S.Min[I];
  }
  for (const RankedInstance &R : Data)
    for (unsigned I = 0; I < NumFeatures; ++I) {
      double V = (double)R.Features.get(I);
      if (V < S.Min[I])
        S.Min[I] = V;
      if (V > S.Max[I])
        S.Max[I] = V;
    }
  return S;
}

std::vector<double> Scaling::apply(const FeatureVector &F) const {
  std::vector<double> Out(NumFeatures, 0.0);
  for (unsigned I = 0; I < NumFeatures; ++I) {
    double Delta = Max[I] - Min[I];
    if (Delta <= 0.0)
      continue; // invariant feature: contributes nothing
    double V = ((double)F.get(I) - Min[I]) / Delta;
    // Unseen values outside the training range are clamped.
    Out[I] = V < 0.0 ? 0.0 : (V > 1.0 ? 1.0 : V);
  }
  return Out;
}

std::string Scaling::toText() const {
  std::string Out = "# jitml scaling file: index min max\n";
  char Buf[96];
  for (unsigned I = 0; I < NumFeatures; ++I) {
    std::snprintf(Buf, sizeof(Buf), "%u %.17g %.17g\n", I, Min[I], Max[I]);
    Out += Buf;
  }
  return Out;
}

bool Scaling::fromText(const std::string &Text, Scaling &Out) {
  Out = Scaling();
  std::istringstream In(Text);
  std::string Line;
  // Track which indices appeared: a plain line counter would let a file
  // with a duplicated index and a missing one slip through.
  std::bitset<NumFeatures> Seen;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    unsigned Index;
    double Lo, Hi;
    if (std::sscanf(Line.c_str(), "%u %lg %lg", &Index, &Lo, &Hi) != 3 ||
        Index >= NumFeatures)
      return false;
    if (Seen[Index])
      return false; // duplicate index line: the file is corrupt
    Seen[Index] = true;
    Out.Min[Index] = Lo;
    Out.Max[Index] = Hi;
  }
  return Seen.all();
}

bool Scaling::save(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = toText();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}

bool Scaling::load(const std::string &Path, Scaling &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return fromText(Text, Out);
}

int32_t LabelMap::labelFor(uint64_t ModifierBits) {
  auto It = ByBits.find(ModifierBits);
  if (It != ByBits.end())
    return It->second;
  ByLabel.push_back(ModifierBits);
  int32_t Label = (int32_t)ByLabel.size(); // labels start at 1
  ByBits.emplace(ModifierBits, Label);
  return Label;
}

int32_t LabelMap::lookup(uint64_t ModifierBits) const {
  auto It = ByBits.find(ModifierBits);
  return It == ByBits.end() ? 0 : It->second;
}

bool LabelMap::modifierFor(int32_t Label, uint64_t &BitsOut) const {
  if (Label < 1 || (size_t)Label > ByLabel.size())
    return false;
  BitsOut = ByLabel[(size_t)Label - 1];
  return true;
}

std::string LabelMap::toText() const {
  std::string Out = "# jitml label map: label modifierBits\n";
  char Buf[64];
  for (size_t I = 0; I < ByLabel.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "%zu %llu\n", I + 1,
                  (unsigned long long)ByLabel[I]);
    Out += Buf;
  }
  return Out;
}

bool LabelMap::fromText(const std::string &Text, LabelMap &Out) {
  Out = LabelMap();
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    unsigned long long Label, Bits;
    if (std::sscanf(Line.c_str(), "%llu %llu", &Label, &Bits) != 2)
      return false;
    if (Label != Out.ByLabel.size() + 1)
      return false; // labels must be dense and in order
    Out.ByLabel.push_back(Bits);
    Out.ByBits.emplace(Bits, (int32_t)Label);
  }
  return true;
}

std::vector<NormalizedInstance>
jitml::normalizeInstances(const std::vector<RankedInstance> &Data,
                          const Scaling &S, LabelMap &Labels) {
  std::vector<NormalizedInstance> Out;
  Out.reserve(Data.size());
  for (const RankedInstance &R : Data) {
    NormalizedInstance N;
    N.Label = Labels.labelFor(R.ModifierBits);
    N.Components = S.apply(R.Features);
    Out.push_back(std::move(N));
  }
  return Out;
}
