//===- mldata/Merger.cpp --------------------------------------------------===//

#include "mldata/Merger.h"

#include <algorithm>

using namespace jitml;

IntermediateDataSet jitml::unarchive(const ArchiveData &Archive,
                                     const std::string &SourceTag) {
  IntermediateDataSet Out;
  Out.Records.reserve(Archive.Records.size());
  for (const CollectionRecord &R : Archive.Records) {
    assert(R.SignatureId < Archive.Signatures.size() &&
           "record references a missing dictionary entry");
    Out.Records.push_back({SourceTag, Archive.Signatures[R.SignatureId], R});
  }
  return Out;
}

IntermediateDataSet
jitml::mergeExcluding(const std::vector<IntermediateDataSet> &Sets,
                      const std::vector<std::string> &ExcludedTags) {
  IntermediateDataSet Out;
  for (const IntermediateDataSet &S : Sets)
    for (const TaggedRecord &T : S.Records) {
      bool Excluded =
          std::find(ExcludedTags.begin(), ExcludedTags.end(), T.SourceTag) !=
          ExcludedTags.end();
      if (!Excluded)
        Out.Records.push_back(T);
    }
  return Out;
}

IntermediateDataSet
jitml::mergeAll(const std::vector<IntermediateDataSet> &Sets) {
  return mergeExcluding(Sets, {});
}
