//===- mldata/Dataset.h - Training data containers --------------*- C++ -*-===//
///
/// \file
/// Containers for the stages of Figure 3: unarchived intermediate data
/// sets, merged sets (for cross-validation / leave-one-out), ranked
/// instances, and the final normalized LIBLINEAR-style instances.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_MLDATA_DATASET_H
#define JITML_MLDATA_DATASET_H

#include "collect/CollectionRecord.h"

#include <string>
#include <vector>

namespace jitml {

/// One unarchived record with its provenance (which collection run /
/// benchmark it came from — leave-one-out merges select on this tag).
struct TaggedRecord {
  std::string SourceTag;  ///< e.g. benchmark code "co", "db", ...
  std::string Signature;  ///< resolved method signature from the archive
  CollectionRecord Record;
};

/// An intermediate data set: what unarchiving produces, what merging
/// combines.
struct IntermediateDataSet {
  std::vector<TaggedRecord> Records;

  size_t size() const { return Records.size(); }
  void append(const IntermediateDataSet &Other) {
    Records.insert(Records.end(), Other.Records.begin(),
                   Other.Records.end());
  }
};

/// A ranked training instance: one (feature vector, modifier) pair that
/// survived selection, with its ranking value.
struct RankedInstance {
  FeatureVector Features;
  uint64_t ModifierBits = 0;
  double RankValue = 0.0; ///< V_i of Eq. 2 (smaller is better)
};

/// A normalized instance in the form LIBLINEAR consumes: class label in
/// [1, 2^31-1] plus components scaled to [0, 1].
struct NormalizedInstance {
  int32_t Label = 0;
  std::vector<double> Components; ///< NumFeatures entries in [0,1]
};

/// Summary counters used by the Table 4 reproduction.
struct DataSetSummary {
  uint64_t Instances = 0;
  uint64_t UniqueClasses = 0;        ///< distinct modifiers
  uint64_t UniqueFeatureVectors = 0; ///< distinct methods-as-seen
  /// instances per unique feature vector (the "Vector:Instance Ratio").
  double vectorInstanceRatio() const {
    return UniqueFeatureVectors
               ? (double)Instances / (double)UniqueFeatureVectors
               : 0.0;
  }
};

/// Counts instances / unique classes / unique feature vectors over raw
/// records of one optimization level ("Merged Data" columns of Table 4).
DataSetSummary summarizeMerged(const IntermediateDataSet &Data,
                               OptLevel Level);

/// Same counters over ranked instances ("Ranked Data" columns).
DataSetSummary summarizeRanked(const std::vector<RankedInstance> &Data);

} // namespace jitml

#endif // JITML_MLDATA_DATASET_H
