//===- mldata/Normalizer.h - Eq. 3 feature scaling --------------*- C++ -*-===//
///
/// \file
/// Per-component min/max normalization to [0,1]:
///
///     C_norm = (C_j - C_min) / (C_max - C_min)                 (Eq. 3)
///
/// "This normalization eliminates the dominant effect of larger numerical
/// ranges over smaller ones when an SVM is trained." The shift/scale
/// parameters are persisted in a *scaling file* so the learning-enabled
/// compiler can renormalize "using the same parameters that were used for
/// normalization in the data collection" (section 7).
///
//===----------------------------------------------------------------------===//

#ifndef JITML_MLDATA_NORMALIZER_H
#define JITML_MLDATA_NORMALIZER_H

#include "mldata/Dataset.h"

#include <map>
#include <string>

namespace jitml {

class Scaling {
public:
  /// Fits min/max per component over \p Data.
  static Scaling fit(const std::vector<RankedInstance> &Data);

  /// Applies Eq. 3 to one raw feature vector. Components that were
  /// constant during fitting map to 0.
  std::vector<double> apply(const FeatureVector &F) const;

  double minOf(unsigned I) const { return Min[I]; }
  double maxOf(unsigned I) const { return Max[I]; }

  /// Scaling-file serialization (one "index min max" line per component).
  std::string toText() const;
  static bool fromText(const std::string &Text, Scaling &Out);

  bool save(const std::string &Path) const;
  static bool load(const std::string &Path, Scaling &Out);

private:
  double Min[NumFeatures] = {};
  double Max[NumFeatures] = {};
};

/// Label mapping: "the output of the machine-learned model is in the
/// [1, 2^31-1] range and has to be mapped back to the full binary pattern
/// that represents a modifier ... using a lookup table" (section 7).
class LabelMap {
public:
  /// Returns the label for \p ModifierBits, assigning the next one if new.
  int32_t labelFor(uint64_t ModifierBits);
  /// Label lookup without insertion; 0 when unknown.
  int32_t lookup(uint64_t ModifierBits) const;
  /// Inverse lookup; returns false for unknown labels.
  bool modifierFor(int32_t Label, uint64_t &BitsOut) const;

  size_t size() const { return ByLabel.size(); }

  std::string toText() const;
  static bool fromText(const std::string &Text, LabelMap &Out);

private:
  std::vector<uint64_t> ByLabel; ///< label 1 lives at index 0
  std::map<uint64_t, int32_t> ByBits;
};

/// Builds normalized instances from ranked data using \p S and \p Labels.
std::vector<NormalizedInstance>
normalizeInstances(const std::vector<RankedInstance> &Data, const Scaling &S,
                   LabelMap &Labels);

} // namespace jitml

#endif // JITML_MLDATA_NORMALIZER_H
