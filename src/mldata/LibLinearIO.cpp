//===- mldata/LibLinearIO.cpp ---------------------------------------------===//

#include "mldata/LibLinearIO.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace jitml;

std::string
jitml::writeLibLinear(const std::vector<NormalizedInstance> &Data) {
  std::string Out;
  char Buf[64];
  for (const NormalizedInstance &N : Data) {
    std::snprintf(Buf, sizeof(Buf), "%d", N.Label);
    Out += Buf;
    for (size_t I = 0; I < N.Components.size(); ++I) {
      if (N.Components[I] == 0.0)
        continue; // "features with value zero can be omitted"
      std::snprintf(Buf, sizeof(Buf), " %zu:%.10g", I + 1, N.Components[I]);
      Out += Buf;
    }
    Out += '\n';
  }
  return Out;
}

namespace {

/// Formats "line L: <what> in 'Token'" into *Error (when provided) and
/// returns false, so parse rejections read as `return fail(...)`.
bool fail(std::string *Error, unsigned LineNo, const char *What,
          const std::string &Token) {
  if (Error) {
    *Error = "line " + std::to_string(LineNo) + ": " + What + " in '" +
             Token + "'";
  }
  return false;
}

} // namespace

bool jitml::readLibLinear(const std::string &Text, unsigned NumComponents,
                          std::vector<NormalizedInstance> &Out,
                          std::string *Error) {
  Out.clear();
  if (Error)
    Error->clear();
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    NormalizedInstance N;
    if (!(Fields >> N.Label) || N.Label < 1)
      return fail(Error, LineNo, "bad class label", Line);
    N.Components.assign(NumComponents, 0.0);
    std::string Pair;
    while (Fields >> Pair) {
      size_t Colon = Pair.find(':');
      if (Colon == std::string::npos || Colon == 0)
        return fail(Error, LineNo, "expected index:value pair", Pair);
      // Strict index parse: digits only, fully consumed up to the colon.
      // strtoul with a null end pointer would read "3x:1" as index 3.
      const char *IdxBegin = Pair.c_str();
      char *IdxEnd = nullptr;
      errno = 0;
      unsigned long Index = std::strtoul(IdxBegin, &IdxEnd, 10);
      if (IdxEnd != IdxBegin + Colon || errno == ERANGE)
        return fail(Error, LineNo, "malformed feature index", Pair);
      if (Index < 1 || Index > NumComponents)
        return fail(Error, LineNo, "feature index out of range", Pair);
      // Strict value parse: strtod with a null end pointer silently turns
      // truncated ("3:") or garbage ("3:abc") values into 0.0 — a zero
      // weight is a legal feature value, so that corruption is invisible
      // downstream. Require a non-empty, fully-consumed number.
      const char *ValBegin = IdxBegin + Colon + 1;
      char *ValEnd = nullptr;
      errno = 0;
      double Value = std::strtod(ValBegin, &ValEnd);
      if (ValEnd == ValBegin || *ValEnd != '\0')
        return fail(Error, LineNo, "malformed feature value", Pair);
      if (errno == ERANGE && (Value == HUGE_VAL || Value == -HUGE_VAL))
        return fail(Error, LineNo, "feature value out of range", Pair);
      N.Components[Index - 1] = Value;
    }
    Out.push_back(std::move(N));
  }
  return true;
}

bool jitml::writeLibLinearFile(const std::string &Path,
                               const std::vector<NormalizedInstance> &Data) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = writeLibLinear(Data);
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}

bool jitml::readLibLinearFile(const std::string &Path,
                              unsigned NumComponents,
                              std::vector<NormalizedInstance> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return readLibLinear(Text, NumComponents, Out);
}
