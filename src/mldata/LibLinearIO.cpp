//===- mldata/LibLinearIO.cpp ---------------------------------------------===//

#include "mldata/LibLinearIO.h"

#include <cstdio>
#include <sstream>

using namespace jitml;

std::string
jitml::writeLibLinear(const std::vector<NormalizedInstance> &Data) {
  std::string Out;
  char Buf[64];
  for (const NormalizedInstance &N : Data) {
    std::snprintf(Buf, sizeof(Buf), "%d", N.Label);
    Out += Buf;
    for (size_t I = 0; I < N.Components.size(); ++I) {
      if (N.Components[I] == 0.0)
        continue; // "features with value zero can be omitted"
      std::snprintf(Buf, sizeof(Buf), " %zu:%.10g", I + 1, N.Components[I]);
      Out += Buf;
    }
    Out += '\n';
  }
  return Out;
}

bool jitml::readLibLinear(const std::string &Text, unsigned NumComponents,
                          std::vector<NormalizedInstance> &Out) {
  Out.clear();
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    NormalizedInstance N;
    if (!(Fields >> N.Label) || N.Label < 1)
      return false;
    N.Components.assign(NumComponents, 0.0);
    std::string Pair;
    while (Fields >> Pair) {
      size_t Colon = Pair.find(':');
      if (Colon == std::string::npos)
        return false;
      unsigned long Index = std::strtoul(Pair.c_str(), nullptr, 10);
      double Value = std::strtod(Pair.c_str() + Colon + 1, nullptr);
      if (Index < 1 || Index > NumComponents)
        return false;
      N.Components[Index - 1] = Value;
    }
    Out.push_back(std::move(N));
  }
  return true;
}

bool jitml::writeLibLinearFile(const std::string &Path,
                               const std::vector<NormalizedInstance> &Data) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = writeLibLinear(Data);
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}

bool jitml::readLibLinearFile(const std::string &Path,
                              unsigned NumComponents,
                              std::vector<NormalizedInstance> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return readLibLinear(Text, NumComponents, Out);
}
