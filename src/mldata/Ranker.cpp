//===- mldata/Ranker.cpp --------------------------------------------------===//

#include "mldata/Ranker.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace jitml;

DataSetSummary jitml::summarizeMerged(const IntermediateDataSet &Data,
                                      OptLevel Level) {
  DataSetSummary S;
  std::unordered_set<uint64_t> Classes;
  std::unordered_set<uint64_t> Vectors;
  for (const TaggedRecord &T : Data.Records) {
    if (T.Record.Level != Level)
      continue;
    ++S.Instances;
    Classes.insert(T.Record.ModifierBits);
    Vectors.insert(T.Record.Features.hash());
  }
  S.UniqueClasses = Classes.size();
  S.UniqueFeatureVectors = Vectors.size();
  return S;
}

DataSetSummary
jitml::summarizeRanked(const std::vector<RankedInstance> &Data) {
  DataSetSummary S;
  std::unordered_set<uint64_t> Classes;
  std::unordered_set<uint64_t> Vectors;
  for (const RankedInstance &R : Data) {
    ++S.Instances;
    Classes.insert(R.ModifierBits);
    Vectors.insert(R.Features.hash());
  }
  S.UniqueClasses = Classes.size();
  S.UniqueFeatureVectors = Vectors.size();
  return S;
}

unsigned jitml::loopClassOfFeatures(const FeatureVector &F) {
  if (!F.attr(AF_MayHaveLoops))
    return 0;
  if (F.attr(AF_ManyIterationLoops) || F.attr(AF_MayHaveManyIterationLoops))
    return 2;
  return 1;
}

double jitml::rankValue(const CollectionRecord &R,
                        const TriggerTable &Triggers) {
  assert(R.Invocations > 0 && "ranking a record without samples");
  double PerInvocation = R.RunCycles / (double)R.Invocations;
  double Th = Triggers.of(R.Level, loopClassOfFeatures(R.Features));
  return PerInvocation + R.CompileCycles / Th;
}

namespace {

/// Content hash adapter so the grouping map is keyed on the existing
/// FeatureVector::hash(); equality falls back to the full 71-component
/// comparison, so colliding vectors still land in distinct groups.
struct FeatureVectorHash {
  size_t operator()(const FeatureVector &F) const { return (size_t)F.hash(); }
};

struct Entry {
  const CollectionRecord *Rec;
  double V;
  size_t Index; ///< position in Data.Records, for deterministic ties
};

/// Best observation per modifier within one feature-vector group.
using ModifierMap = std::unordered_map<uint64_t, Entry>;
using GroupMap = std::unordered_map<FeatureVector, ModifierMap,
                                    FeatureVectorHash>;

/// Keeps the better of two observations of the same (vector, modifier)
/// pair: smaller ranking value wins, earlier record wins ties — exactly
/// the record-order semantics of a single sequential scan.
void foldEntry(ModifierMap &PerModifier, uint64_t Bits, const Entry &E) {
  auto [It, Inserted] = PerModifier.try_emplace(Bits, E);
  if (!Inserted &&
      (E.V < It->second.V || (E.V == It->second.V && E.Index < It->second.Index)))
    It->second = E;
}

GroupMap groupShard(const IntermediateDataSet &Data, size_t Begin, size_t End,
                    OptLevel Level, const TriggerTable &Triggers) {
  GroupMap Groups;
  for (size_t I = Begin; I < End; ++I) {
    const CollectionRecord &R = Data.Records[I].Record;
    if (R.Level != Level || R.Invocations == 0)
      continue;
    foldEntry(Groups[R.Features], R.ModifierBits,
              Entry{&R, rankValue(R, Triggers), I});
  }
  return Groups;
}

} // namespace

std::vector<RankedInstance>
jitml::rankRecords(const IntermediateDataSet &Data, OptLevel Level,
                   const SelectionPolicy &Policy,
                   const TriggerTable &Triggers) {
  // Figure 3's aggregation step ("progressively sorted in lexicographical
  // order, based on the feature vector of each record ... aggregates all
  // experiments performed on the same feature vector") — realized as O(n)
  // hash grouping on FeatureVector::hash() instead of a comparison-sorted
  // map, with one final lexicographic sort over the (much smaller) set of
  // unique vectors so the emitted instance order is unchanged.
  size_t NumRecords = Data.Records.size();
  unsigned Jobs = configuredJobs();
  GroupMap Groups;
  if (Jobs > 1 && NumRecords >= 4096 && !ThreadPool::onWorkerThread()) {
    // Shard the scan, then fold the per-shard maps left-to-right. The
    // fold rule is position-aware, so the merged map is identical to the
    // single-scan result no matter how records were sharded.
    size_t Shards = std::min<size_t>(Jobs, (NumRecords + 4095) / 4096);
    std::vector<GroupMap> Parts(Shards);
    size_t Chunk = (NumRecords + Shards - 1) / Shards;
    parallelFor(Shards, [&](size_t S) {
      size_t Begin = S * Chunk;
      size_t End = std::min(NumRecords, Begin + Chunk);
      Parts[S] = groupShard(Data, Begin, End, Level, Triggers);
    });
    Groups = std::move(Parts[0]);
    for (size_t S = 1; S < Shards; ++S)
      for (auto &[Features, PerModifier] : Parts[S]) {
        auto It = Groups.find(Features);
        if (It == Groups.end()) {
          Groups.emplace(Features, std::move(PerModifier));
          continue;
        }
        for (const auto &[Bits, E] : PerModifier)
          foldEntry(It->second, Bits, E);
      }
  } else {
    Groups = groupShard(Data, 0, NumRecords, Level, Triggers);
  }

  // Restore the lexicographic emission order of the sorted-map original.
  std::vector<const GroupMap::value_type *> Ordered;
  Ordered.reserve(Groups.size());
  for (const auto &KV : Groups)
    Ordered.push_back(&KV);
  std::sort(Ordered.begin(), Ordered.end(),
            [](const GroupMap::value_type *A, const GroupMap::value_type *B) {
              return A->first < B->first;
            });

  std::vector<RankedInstance> Out;
  for (const GroupMap::value_type *Group : Ordered) {
    const FeatureVector &Features = Group->first;
    std::vector<Entry> Sorted;
    Sorted.reserve(Group->second.size());
    for (const auto &[Bits, E] : Group->second) {
      (void)Bits;
      Sorted.push_back(E);
    }
    // Pre-order by modifier bits (the ordered-map original fed the value
    // sort in ascending-bits order), then rank by value.
    std::sort(Sorted.begin(), Sorted.end(),
              [](const Entry &A, const Entry &B) {
                return A.Rec->ModifierBits < B.Rec->ModifierBits;
              });
    std::sort(Sorted.begin(), Sorted.end(),
              [](const Entry &A, const Entry &B) { return A.V < B.V; });
    size_t Keep = 0;
    switch (Policy.Mode) {
    case SelectionPolicy::Kind::BestOnly:
      Keep = 1;
      break;
    case SelectionPolicy::Kind::TopN:
      Keep = Policy.N;
      break;
    case SelectionPolicy::Kind::TopPercent:
      Keep = (size_t)((double)Sorted.size() * Policy.Percent / 100.0);
      if (Keep == 0)
        Keep = 1;
      break;
    case SelectionPolicy::Kind::WithinOfBest: {
      // "To be selected, a modifier must have a ranking value of at least
      // 95% of the best performing modifier" — smaller V is better, so
      // V_best / V_i >= Threshold. Capped at N (paper: 3).
      double Best = Sorted.front().V;
      Keep = 1;
      while (Keep < Sorted.size() && Keep < Policy.N &&
             (Sorted[Keep].V <= 0.0 ||
              Best / Sorted[Keep].V >= Policy.Threshold))
        ++Keep;
      break;
    }
    }
    Keep = std::min(Keep, Sorted.size());
    for (size_t I = 0; I < Keep; ++I) {
      RankedInstance Inst;
      Inst.Features = Features;
      Inst.ModifierBits = Sorted[I].Rec->ModifierBits;
      Inst.RankValue = Sorted[I].V;
      Out.push_back(std::move(Inst));
    }
  }
  return Out;
}
