//===- mldata/Ranker.cpp --------------------------------------------------===//

#include "mldata/Ranker.h"

#include <algorithm>
#include <map>
#include <set>

using namespace jitml;

DataSetSummary jitml::summarizeMerged(const IntermediateDataSet &Data,
                                      OptLevel Level) {
  DataSetSummary S;
  std::set<uint64_t> Classes;
  std::set<uint64_t> Vectors;
  for (const TaggedRecord &T : Data.Records) {
    if (T.Record.Level != Level)
      continue;
    ++S.Instances;
    Classes.insert(T.Record.ModifierBits);
    Vectors.insert(T.Record.Features.hash());
  }
  S.UniqueClasses = Classes.size();
  S.UniqueFeatureVectors = Vectors.size();
  return S;
}

DataSetSummary
jitml::summarizeRanked(const std::vector<RankedInstance> &Data) {
  DataSetSummary S;
  std::set<uint64_t> Classes;
  std::set<uint64_t> Vectors;
  for (const RankedInstance &R : Data) {
    ++S.Instances;
    Classes.insert(R.ModifierBits);
    Vectors.insert(R.Features.hash());
  }
  S.UniqueClasses = Classes.size();
  S.UniqueFeatureVectors = Vectors.size();
  return S;
}

unsigned jitml::loopClassOfFeatures(const FeatureVector &F) {
  if (!F.attr(AF_MayHaveLoops))
    return 0;
  if (F.attr(AF_ManyIterationLoops) || F.attr(AF_MayHaveManyIterationLoops))
    return 2;
  return 1;
}

double jitml::rankValue(const CollectionRecord &R,
                        const TriggerTable &Triggers) {
  assert(R.Invocations > 0 && "ranking a record without samples");
  double PerInvocation = R.RunCycles / (double)R.Invocations;
  double Th = Triggers.of(R.Level, loopClassOfFeatures(R.Features));
  return PerInvocation + R.CompileCycles / Th;
}

std::vector<RankedInstance>
jitml::rankRecords(const IntermediateDataSet &Data, OptLevel Level,
                   const SelectionPolicy &Policy,
                   const TriggerTable &Triggers) {
  // Figure 3: "intermediate data sets are loaded and progressively sorted
  // in lexicographical order, based on the feature vector of each record.
  // This sorting aggregates all experiments performed on the same feature
  // vector."
  struct Entry {
    const CollectionRecord *Rec;
    double V;
  };
  std::map<FeatureVector, std::map<uint64_t, Entry>> Groups;
  for (const TaggedRecord &T : Data.Records) {
    const CollectionRecord &R = T.Record;
    if (R.Level != Level || R.Invocations == 0)
      continue;
    double V = rankValue(R, Triggers);
    auto &PerModifier = Groups[R.Features];
    auto It = PerModifier.find(R.ModifierBits);
    // The same (vector, modifier) pair can appear in several runs; keep
    // the best-performing observation.
    if (It == PerModifier.end() || V < It->second.V)
      PerModifier[R.ModifierBits] = {&R, V};
  }

  std::vector<RankedInstance> Out;
  for (const auto &[Features, PerModifier] : Groups) {
    std::vector<Entry> Sorted;
    Sorted.reserve(PerModifier.size());
    for (const auto &[Bits, E] : PerModifier) {
      (void)Bits;
      Sorted.push_back(E);
    }
    std::sort(Sorted.begin(), Sorted.end(),
              [](const Entry &A, const Entry &B) { return A.V < B.V; });
    size_t Keep = 0;
    switch (Policy.Mode) {
    case SelectionPolicy::Kind::BestOnly:
      Keep = 1;
      break;
    case SelectionPolicy::Kind::TopN:
      Keep = Policy.N;
      break;
    case SelectionPolicy::Kind::TopPercent:
      Keep = (size_t)((double)Sorted.size() * Policy.Percent / 100.0);
      if (Keep == 0)
        Keep = 1;
      break;
    case SelectionPolicy::Kind::WithinOfBest: {
      // "To be selected, a modifier must have a ranking value of at least
      // 95% of the best performing modifier" — smaller V is better, so
      // V_best / V_i >= Threshold. Capped at N (paper: 3).
      double Best = Sorted.front().V;
      Keep = 1;
      while (Keep < Sorted.size() && Keep < Policy.N &&
             (Sorted[Keep].V <= 0.0 ||
              Best / Sorted[Keep].V >= Policy.Threshold))
        ++Keep;
      break;
    }
    }
    Keep = std::min(Keep, Sorted.size());
    for (size_t I = 0; I < Keep; ++I) {
      RankedInstance Inst;
      Inst.Features = Features;
      Inst.ModifierBits = Sorted[I].Rec->ModifierBits;
      Inst.RankValue = Sorted[I].V;
      Out.push_back(std::move(Inst));
    }
  }
  return Out;
}
