//===- mldata/LibLinearIO.h - LIBLINEAR sparse text format ------*- C++ -*-===//
///
/// \file
/// Reader/writer for the "textual sparse-matrix format, where each line is
/// a data instance" (Figure 4): the class label followed by `index:value`
/// pairs with 1-based component indices; zero-valued features are omitted.
/// LIBLINEAR requires class labels in [1, 2^31-1].
///
//===----------------------------------------------------------------------===//

#ifndef JITML_MLDATA_LIBLINEARIO_H
#define JITML_MLDATA_LIBLINEARIO_H

#include "mldata/Dataset.h"

#include <string>

namespace jitml {

/// Renders instances in the sparse text format.
std::string writeLibLinear(const std::vector<NormalizedInstance> &Data);

/// Parses the sparse text format; returns false on malformed input.
/// \p NumComponents sets the dense width of the parsed instances.
///
/// Parsing is strict: every `index:value` pair must be a fully-consumed
/// decimal index and floating-point value (truncated pairs like "3:",
/// garbage like "3:abc", and trailing junk like "3:1.5x" are rejected, not
/// silently read as 0.0). When \p Error is non-null, a rejected input
/// leaves a one-line diagnostic naming the line number and the offending
/// token.
bool readLibLinear(const std::string &Text, unsigned NumComponents,
                   std::vector<NormalizedInstance> &Out,
                   std::string *Error = nullptr);

bool writeLibLinearFile(const std::string &Path,
                        const std::vector<NormalizedInstance> &Data);
bool readLibLinearFile(const std::string &Path, unsigned NumComponents,
                       std::vector<NormalizedInstance> &Out);

} // namespace jitml

#endif // JITML_MLDATA_LIBLINEARIO_H
