//===- mldata/Merger.h - Data set merging / unarchiving ---------*- C++ -*-===//
///
/// \file
/// Unarchiving ("extracts information from the compact archives and stores
/// it in a format that is suitable for further processing") and merging
/// ("allows for the selective use of data sets of interest to enable
/// cross-validation and leave-one-out cross-validation") — the first two
/// stages of the Figure 3 work flow.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_MLDATA_MERGER_H
#define JITML_MLDATA_MERGER_H

#include "collect/Archive.h"
#include "mldata/Dataset.h"

namespace jitml {

/// Converts a decoded archive into an intermediate data set tagged with
/// its provenance.
IntermediateDataSet unarchive(const ArchiveData &Archive,
                              const std::string &SourceTag);

/// Merges every set whose tag is NOT in \p ExcludedTags — the leave-one-out
/// merge: pass the held-out benchmark's tag to exclude it.
IntermediateDataSet
mergeExcluding(const std::vector<IntermediateDataSet> &Sets,
               const std::vector<std::string> &ExcludedTags);

/// Merges everything.
IntermediateDataSet mergeAll(const std::vector<IntermediateDataSet> &Sets);

} // namespace jitml

#endif // JITML_MLDATA_MERGER_H
