//===- mldata/Ranker.h - Eq. 2 ranking and selection ------------*- C++ -*-===//
///
/// \file
/// The ranking stage of Figure 3: records are sorted lexicographically by
/// feature vector (aggregating all experiments on the same method shape),
/// each record gets the value
///
///     V_i = R_i / I_i + C_i / T_h                              (Eq. 2)
///
/// — average run time per invocation plus compile time amortized over the
/// level-h recompilation trigger — and per unique feature vector a small
/// set of best modifiers is selected. The paper's production setting is
/// "at most 3 modifiers ... a modifier must have a ranking value of at
/// least 95% of the best performing modifier"; the alternative strategies
/// (best-only / top-N / top-M%) from section 6 are implemented too.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_MLDATA_RANKER_H
#define JITML_MLDATA_RANKER_H

#include "mldata/Dataset.h"

namespace jitml {

/// Modifier-selection strategy per unique feature vector (section 6).
struct SelectionPolicy {
  enum class Kind : uint8_t {
    BestOnly,      ///< strategy (i)
    TopN,          ///< strategy (ii)
    TopPercent,    ///< strategy (iii)
    WithinOfBest,  ///< the paper's evaluation setting
  };
  Kind Mode = Kind::WithinOfBest;
  unsigned N = 3;        ///< TopN / cap for WithinOfBest
  double Percent = 10.0; ///< TopPercent
  double Threshold = 0.95; ///< WithinOfBest: V_best / V_i >= Threshold
};

/// Recompilation triggers T_h per optimization level, indexed by the loop
/// class derived from the record's feature vector (footnote 6: separate
/// triggers for no-loop / loop / many-iteration-loop methods).
struct TriggerTable {
  double T[NumOptLevels][3] = {
      {12, 6, 3},
      {60, 30, 15},
      {400, 200, 100},
      {2500, 1500, 800},
      {12000, 8000, 4000},
  };
  double of(OptLevel L, unsigned LoopClass) const {
    return T[(unsigned)L][LoopClass];
  }
};

/// Loop class encoded in a feature vector's Table 1 attributes.
unsigned loopClassOfFeatures(const FeatureVector &F);

/// The ranking value V_i for one record (Eq. 2).
double rankValue(const CollectionRecord &R, const TriggerTable &Triggers);

/// Ranks and selects training instances for one optimization level.
/// Records of other levels and records without valid samples are skipped.
std::vector<RankedInstance> rankRecords(const IntermediateDataSet &Data,
                                        OptLevel Level,
                                        const SelectionPolicy &Policy,
                                        const TriggerTable &Triggers);

} // namespace jitml

#endif // JITML_MLDATA_RANKER_H
