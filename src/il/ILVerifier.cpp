//===- il/ILVerifier.cpp --------------------------------------------------===//

#include "il/ILVerifier.h"

#include <cstdio>

using namespace jitml;

namespace {

/// Expected child count for an opcode; -1 means variable.
int expectedKids(const MethodIL &IL, const Node &N) {
  switch (N.Op) {
  case ILOp::Const:
  case ILOp::LoadLocal:
  case ILOp::LoadGlobal:
  case ILOp::LoadException:
  case ILOp::New:
  case ILOp::Goto:
    return 0;
  case ILOp::LoadField:
  case ILOp::ArrayLen:
  case ILOp::Neg:
  case ILOp::Conv:
  case ILOp::InstanceOf:
  case ILOp::StoreLocal:
  case ILOp::StoreGlobal:
  case ILOp::NullCheck:
  case ILOp::DivCheck:
  case ILOp::CastCheck:
  case ILOp::MonitorEnter:
  case ILOp::MonitorExit:
  case ILOp::ExprStmt:
  case ILOp::Throw:
  case ILOp::NewArray:
    return 1;
  case ILOp::LoadElem:
  case ILOp::Add:
  case ILOp::Sub:
  case ILOp::Mul:
  case ILOp::Div:
  case ILOp::Rem:
  case ILOp::Shl:
  case ILOp::Shr:
  case ILOp::Or:
  case ILOp::And:
  case ILOp::Xor:
  case ILOp::Cmp:
  case ILOp::CmpCond:
  case ILOp::ArrayCmp:
  case ILOp::StoreField:
  case ILOp::BoundsCheck:
  case ILOp::Branch:
    return 2;
  case ILOp::StoreElem:
    return 3;
  case ILOp::ArrayCopy:
    return 5;
  case ILOp::Call: {
    if (N.A < 0 || (uint32_t)N.A >= IL.program().numMethods())
      return -2; // flagged separately
    return (int)IL.program().methodAt((uint32_t)N.A).numArgs();
  }
  case ILOp::NewMultiArray:
    return N.A;
  case ILOp::Return:
    return -1; // 0 or 1
  }
  return -1;
}

/// Coarse type buckets for operand checking. Values are carried in 64-bit
/// lanes, so passes may legally narrow within a bucket (e.g. sign-extension
/// elimination leaves an Int16-typed operand under an Int32 add); crossing
/// buckets without an explicit Conv is a miscompile.
enum class TypeCat { Integer, Float, Decimal, Reference, Void };

TypeCat categoryOf(DataType T) {
  if (isIntegerType(T))
    return TypeCat::Integer;
  if (isFloatType(T))
    return TypeCat::Float;
  if (isDecimalType(T))
    return TypeCat::Decimal;
  if (isReferenceType(T))
    return TypeCat::Reference;
  return TypeCat::Void;
}

/// Category of the runtime value a node produces. Array allocations carry
/// their ELEMENT type in Type (see ILOps.h) while producing a reference,
/// so Type alone misclassifies them.
TypeCat valueCategoryOf(const Node &N) {
  if (N.Op == ILOp::NewArray || N.Op == ILOp::NewMultiArray)
    return TypeCat::Reference;
  return categoryOf(N.Type);
}

const char *categoryName(TypeCat C) {
  switch (C) {
  case TypeCat::Integer:
    return "integer";
  case TypeCat::Float:
    return "float";
  case TypeCat::Decimal:
    return "decimal";
  case TypeCat::Reference:
    return "reference";
  case TypeCat::Void:
    return "void";
  }
  return "?";
}

} // namespace

std::vector<std::string> jitml::verifyIL(const MethodIL &IL) {
  std::vector<std::string> Errors;
  char Buf[256];
  auto Err = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Errors.push_back(Buf);
  };

  if (IL.entryBlock() == InvalidBlock || IL.entryBlock() >= IL.numBlocks()) {
    Err("missing or invalid entry block");
    return Errors;
  }

  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    const Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    if (Blk.Trees.empty()) {
      Err("B%u: reachable block has no trees", B);
      continue;
    }
    for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
      NodeId Root = Blk.Trees[TI];
      if (Root >= IL.numNodes()) {
        Err("B%u: tree %zu references invalid node", B, TI);
        continue;
      }
      const Node &RootN = IL.node(Root);
      bool IsLast = TI + 1 == Blk.Trees.size();
      if (isTerminatorOp(RootN.Op) != IsLast) {
        Err("B%u: tree %zu (%s) %s", B, TI, ilOpName(RootN.Op),
            IsLast ? "does not terminate the block"
                   : "is a terminator in the middle of a block");
      }
      // Walk the tree checking structure. Visited guards termination: a
      // cyclic DAG (an in-place rewrite bug) must produce a diagnostic,
      // not an endless walk.
      std::vector<NodeId> Stack{Root};
      std::vector<bool> Visited(IL.numNodes(), false);
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        if (Visited[Id])
          continue;
        Visited[Id] = true;
        const Node &N = IL.node(Id);
        if (Id != Root && isStatementOp(N.Op))
          Err("B%u: statement op %s nested inside a tree", B, ilOpName(N.Op));
        int Want = expectedKids(IL, N);
        if (Want == -2)
          Err("B%u: call node with invalid method index %d", B, N.A);
        else if (Want >= 0 && (int)N.Kids.size() != Want)
          Err("B%u: %s has %u children, expected %d", B, ilOpName(N.Op),
              N.numKids(), Want);
        if (N.Op == ILOp::Return && N.Kids.size() > 1)
          Err("B%u: return with more than one child", B);
        if ((N.Op == ILOp::LoadLocal || N.Op == ILOp::StoreLocal) &&
            (N.A < 0 || (uint32_t)N.A >= IL.numLocals()))
          Err("B%u: local slot %d out of range", B, N.A);
        for (NodeId Kid : N.Kids) {
          if (Kid >= IL.numNodes()) {
            Err("B%u: child id out of range", B);
            continue;
          }
          Stack.push_back(Kid);
        }
      }
    }
    // Successor arity must match the terminator.
    const Node &Term = IL.node(Blk.Trees.back());
    unsigned WantSuccs = 0;
    switch (Term.Op) {
    case ILOp::Branch:
      WantSuccs = 2;
      break;
    case ILOp::Goto:
      WantSuccs = 1;
      break;
    case ILOp::Return:
    case ILOp::Throw:
      WantSuccs = 0;
      break;
    default:
      break;
    }
    if (Blk.Succs.size() != WantSuccs)
      Err("B%u: terminator %s with %zu successors (expected %u)", B,
          ilOpName(Term.Op), Blk.Succs.size(), WantSuccs);
    for (BlockId S : Blk.Succs)
      if (S >= IL.numBlocks())
        Err("B%u: successor out of range", B);
    for (const HandlerRef &H : Blk.Handlers) {
      if (H.Handler >= IL.numBlocks())
        Err("B%u: handler block out of range", B);
      else if (!IL.block(H.Handler).IsHandler)
        Err("B%u: handler edge to non-handler block B%u", B, H.Handler);
    }
  }
  return Errors;
}

std::vector<std::string> jitml::verifyILDeep(const MethodIL &IL) {
  // Structural soundness first; the deep checks walk the same references
  // and would crash or lie on structurally broken IL.
  std::vector<std::string> Errors = verifyIL(IL);
  if (!Errors.empty())
    return Errors;

  char Buf[256];
  auto Err = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Errors.push_back(Buf);
  };
  const uint32_t NumNodes = IL.numNodes();
  const uint32_t NumBlocks = IL.numBlocks();

  // --- CFG well-formedness -------------------------------------------------
  // Succs and Preds must mirror each other edge-for-edge (parallel edges
  // must match in multiplicity: Branch taken == fallthrough is legal).
  for (BlockId B = 0; B < NumBlocks; ++B) {
    const Block &Blk = IL.block(B);
    for (BlockId S : Blk.Succs) {
      if (S >= NumBlocks)
        continue; // already reported
      size_t Fwd = 0, Back = 0;
      for (BlockId X : Blk.Succs)
        Fwd += X == S;
      for (BlockId P : IL.block(S).Preds)
        Back += P == B;
      if (Fwd != Back)
        Err("B%u -> B%u: %zu successor edges but %zu mirrored pred edges",
            B, S, Fwd, Back);
    }
    for (BlockId P : Blk.Preds) {
      if (P >= NumBlocks) {
        Err("B%u: pred out of range", B);
        continue;
      }
      size_t Fwd = 0, Back = 0;
      for (BlockId X : IL.block(P).Succs)
        Fwd += X == B;
      for (BlockId X : Blk.Preds)
        Back += X == P;
      if (Fwd != Back)
        Err("B%u: pred edge from B%u lacks a matching successor edge", B, P);
    }
  }

  // Reachable flags must be sound: a block reachable from the entry via
  // successor or handler edges of reachable blocks must not be marked
  // unreachable (codegen skips !Reachable blocks entirely).
  {
    std::vector<bool> Seen(NumBlocks, false);
    std::vector<BlockId> Work{IL.entryBlock()};
    Seen[IL.entryBlock()] = true;
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      const Block &Blk = IL.block(B);
      auto Visit = [&](BlockId S) {
        if (S < NumBlocks && !Seen[S]) {
          Seen[S] = true;
          Work.push_back(S);
        }
      };
      for (BlockId S : Blk.Succs)
        Visit(S);
      for (const HandlerRef &H : Blk.Handlers)
        Visit(H.Handler);
    }
    for (BlockId B = 0; B < NumBlocks; ++B)
      if (Seen[B] && !IL.block(B).Reachable)
        Err("B%u: reachable from entry but flagged unreachable", B);
  }

  // --- Node DAG: def-before-use --------------------------------------------
  // Under evaluate-at-first-reference semantics an operand is always
  // defined by the time a later reference consumes it — unless the
  // reference graph has a cycle, which no evaluation order can satisfy.
  // Colors: 0 unvisited, 1 on the current DFS path, 2 done.
  {
    std::vector<uint8_t> Color(NumNodes, 0);
    bool CycleReported = false;
    // Iterative DFS with an explicit phase marker per frame.
    struct Frame {
      NodeId Id;
      size_t NextKid;
    };
    for (BlockId B = 0; B < NumBlocks && !CycleReported; ++B) {
      const Block &Blk = IL.block(B);
      if (!Blk.Reachable)
        continue;
      for (NodeId Root : Blk.Trees) {
        if (Color[Root] == 2)
          continue;
        std::vector<Frame> Stack{{Root, 0}};
        Color[Root] = 1;
        while (!Stack.empty() && !CycleReported) {
          Frame &F = Stack.back();
          const Node &N = IL.node(F.Id);
          if (F.NextKid < N.Kids.size()) {
            NodeId Kid = N.Kids[F.NextKid++];
            if (Color[Kid] == 1) {
              Err("node %u: operand cycle through node %u (%s) — no "
                  "def-before-use order exists",
                  F.Id, Kid, ilOpName(IL.node(Kid).Op));
              CycleReported = true;
            } else if (Color[Kid] == 0) {
              Color[Kid] = 1;
              Stack.push_back({Kid, 0});
            }
          } else {
            Color[F.Id] = 2;
            Stack.pop_back();
          }
        }
        if (CycleReported)
          break;
      }
    }
    if (CycleReported)
      return Errors; // type/sharing walks below assume an acyclic DAG
  }

  // --- Per-node semantic checks over reachable trees -----------------------
  // First owner block of every node (InvalidBlock = unseen). Side-effecting
  // expressions shared across blocks execute once per block — a silent
  // duplication of the effect.
  std::vector<BlockId> OwnerBlock(NumNodes, InvalidBlock);
  const MethodInfo &MI = IL.methodInfo();
  for (BlockId B = 0; B < NumBlocks; ++B) {
    const Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
      NodeId Root = Blk.Trees[TI];
      const Node &RootN = IL.node(Root);
      // Stack-balance analog: a non-statement root computes a value that no
      // consumer ever pops. The IL generator wraps discarded values in
      // ExprStmt; a pass that drops the wrapper leaks the value.
      if (!isStatementOp(RootN.Op))
        Err("B%u: tree %zu roots expression %s — value computed but never "
            "consumed",
            B, TI, ilOpName(RootN.Op));
      std::vector<NodeId> Stack{Root};
      std::vector<bool> InTree(NumNodes, false);
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        if (InTree[Id])
          continue;
        InTree[Id] = true;
        const Node &N = IL.node(Id);
        if (OwnerBlock[Id] == InvalidBlock)
          OwnerBlock[Id] = B;
        else if (OwnerBlock[Id] != B && hasSideEffects(N.Op) &&
                 !isStatementOp(N.Op))
          Err("B%u: side-effecting %s (node %u) already referenced in B%u — "
              "it would execute once per block",
              B, ilOpName(N.Op), Id, OwnerBlock[Id]);
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);

        // Operands must produce runtime values. The one place a Void node
        // may legally sit under a parent is a discarded void call under
        // ExprStmt.
        for (NodeId Kid : N.Kids) {
          const Node &K = IL.node(Kid);
          if (N.Op == ILOp::ExprStmt && K.Op == ILOp::Call)
            continue;
          if (!isValueType(K.Type))
            Err("B%u: %s operand (node %u, %s) has non-value type %s", B,
                ilOpName(N.Op), Kid, ilOpName(K.Op), dataTypeName(K.Type));
        }

        // Category-level type consistency.
        TypeCat NC = categoryOf(N.Type);
        auto KidCat = [&](unsigned I) {
          return valueCategoryOf(IL.node(N.Kids[I]));
        };
        switch (N.Op) {
        case ILOp::Add:
        case ILOp::Sub:
        case ILOp::Mul:
        case ILOp::Div:
        case ILOp::Rem:
        case ILOp::Shl:
        case ILOp::Shr:
        case ILOp::Or:
        case ILOp::And:
        case ILOp::Xor:
          if (NC == TypeCat::Void || NC == TypeCat::Reference)
            Err("B%u: %s typed %s", B, ilOpName(N.Op), dataTypeName(N.Type));
          for (unsigned I = 0; I < 2 && I < N.Kids.size(); ++I)
            if (KidCat(I) != NC)
              Err("B%u: %s(%s) operand %u is %s", B, ilOpName(N.Op),
                  categoryName(NC), I, categoryName(KidCat(I)));
          break;
        case ILOp::Neg:
          if (!N.Kids.empty() && KidCat(0) != NC)
            Err("B%u: neg(%s) operand is %s", B, categoryName(NC),
                categoryName(KidCat(0)));
          break;
        case ILOp::Cmp:
        case ILOp::CmpCond:
          if (categoryOf(N.Type) != TypeCat::Integer)
            Err("B%u: %s must yield an integer, got %s", B, ilOpName(N.Op),
                dataTypeName(N.Type));
          if (N.Kids.size() == 2 && KidCat(0) != KidCat(1))
            Err("B%u: %s compares %s against %s", B, ilOpName(N.Op),
                categoryName(KidCat(0)), categoryName(KidCat(1)));
          break;
        case ILOp::Branch:
          if (N.A < 0 || N.A > (int32_t)BcCond::Le)
            Err("B%u: branch with invalid condition %d", B, N.A);
          if (N.Kids.size() == 2 && KidCat(0) != KidCat(1))
            Err("B%u: branch compares %s against %s", B,
                categoryName(KidCat(0)), categoryName(KidCat(1)));
          break;
        case ILOp::Conv: {
          DataType From = (DataType)N.A;
          if (N.A < 0 || N.A >= (int32_t)NumDataTypes ||
              !isValueType(From)) {
            Err("B%u: conv with invalid source type %d", B, N.A);
          } else if (!N.Kids.empty() &&
                     KidCat(0) != categoryOf(From))
            Err("B%u: conv from %s fed a %s operand", B, dataTypeName(From),
                categoryName(KidCat(0)));
          break;
        }
        case ILOp::LoadLocal:
        case ILOp::StoreLocal: {
          if (N.A >= 0 && (uint32_t)N.A < IL.numLocals()) {
            DataType Slot = IL.localType((uint32_t)N.A);
            TypeCat ValCat =
                N.Op == ILOp::LoadLocal
                    ? categoryOf(N.Type)
                    : (N.Kids.empty() ? TypeCat::Void
                                      : valueCategoryOf(IL.node(N.Kids[0])));
            if (ValCat != categoryOf(Slot))
              Err("B%u: %s of %s local %d carries a %s value", B,
                  ilOpName(N.Op), categoryName(categoryOf(Slot)), N.A,
                  categoryName(ValCat));
          }
          break;
        }
        case ILOp::LoadGlobal:
        case ILOp::StoreGlobal:
          if (N.A < 0 || (uint32_t)N.A >= IL.program().numGlobals())
            Err("B%u: global slot %d out of range", B, N.A);
          break;
        case ILOp::LoadElem:
        case ILOp::StoreElem:
          if (!N.Kids.empty() && KidCat(0) != TypeCat::Reference)
            Err("B%u: %s on non-reference array operand", B, ilOpName(N.Op));
          if (N.Kids.size() >= 2 && KidCat(1) != TypeCat::Integer)
            Err("B%u: %s with non-integer index", B, ilOpName(N.Op));
          break;
        case ILOp::ArrayLen:
        case ILOp::NullCheck:
        case ILOp::CastCheck:
        case ILOp::MonitorEnter:
        case ILOp::MonitorExit:
        case ILOp::Throw:
        case ILOp::InstanceOf:
          if (!N.Kids.empty() && KidCat(0) != TypeCat::Reference)
            Err("B%u: %s on non-reference operand (%s)", B, ilOpName(N.Op),
                categoryName(KidCat(0)));
          break;
        case ILOp::Return:
          if (MI.ReturnType == DataType::Void) {
            if (!N.Kids.empty())
              Err("B%u: value return from void method", B);
          } else if (N.Kids.size() == 1 &&
                     KidCat(0) != categoryOf(MI.ReturnType))
            Err("B%u: return carries %s, method returns %s", B,
                categoryName(KidCat(0)), dataTypeName(MI.ReturnType));
          break;
        case ILOp::Call: {
          if (N.A >= 0 && (uint32_t)N.A < IL.program().numMethods()) {
            const MethodInfo &Callee =
                IL.program().methodAt((uint32_t)N.A);
            for (size_t AI = 0;
                 AI < Callee.ArgTypes.size() && AI < N.Kids.size(); ++AI) {
              TypeCat Want = categoryOf(Callee.ArgTypes[AI]);
              TypeCat Got = valueCategoryOf(IL.node(N.Kids[AI]));
              if (Want != Got)
                Err("B%u: call arg %zu is %s, callee expects %s", B, AI,
                    categoryName(Got), categoryName(Want));
            }
          }
          break;
        }
        default:
          break;
        }
      }
    }
  }
  return Errors;
}
