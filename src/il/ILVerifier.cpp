//===- il/ILVerifier.cpp --------------------------------------------------===//

#include "il/ILVerifier.h"

#include <cstdio>

using namespace jitml;

namespace {

/// Expected child count for an opcode; -1 means variable.
int expectedKids(const MethodIL &IL, const Node &N) {
  switch (N.Op) {
  case ILOp::Const:
  case ILOp::LoadLocal:
  case ILOp::LoadGlobal:
  case ILOp::LoadException:
  case ILOp::New:
  case ILOp::Goto:
    return 0;
  case ILOp::LoadField:
  case ILOp::ArrayLen:
  case ILOp::Neg:
  case ILOp::Conv:
  case ILOp::InstanceOf:
  case ILOp::StoreLocal:
  case ILOp::StoreGlobal:
  case ILOp::NullCheck:
  case ILOp::DivCheck:
  case ILOp::CastCheck:
  case ILOp::MonitorEnter:
  case ILOp::MonitorExit:
  case ILOp::ExprStmt:
  case ILOp::Throw:
  case ILOp::NewArray:
    return 1;
  case ILOp::LoadElem:
  case ILOp::Add:
  case ILOp::Sub:
  case ILOp::Mul:
  case ILOp::Div:
  case ILOp::Rem:
  case ILOp::Shl:
  case ILOp::Shr:
  case ILOp::Or:
  case ILOp::And:
  case ILOp::Xor:
  case ILOp::Cmp:
  case ILOp::CmpCond:
  case ILOp::ArrayCmp:
  case ILOp::StoreField:
  case ILOp::BoundsCheck:
  case ILOp::Branch:
    return 2;
  case ILOp::StoreElem:
    return 3;
  case ILOp::ArrayCopy:
    return 5;
  case ILOp::Call: {
    if (N.A < 0 || (uint32_t)N.A >= IL.program().numMethods())
      return -2; // flagged separately
    return (int)IL.program().methodAt((uint32_t)N.A).numArgs();
  }
  case ILOp::NewMultiArray:
    return N.A;
  case ILOp::Return:
    return -1; // 0 or 1
  }
  return -1;
}

} // namespace

std::vector<std::string> jitml::verifyIL(const MethodIL &IL) {
  std::vector<std::string> Errors;
  char Buf[256];
  auto Err = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Errors.push_back(Buf);
  };

  if (IL.entryBlock() == InvalidBlock || IL.entryBlock() >= IL.numBlocks()) {
    Err("missing or invalid entry block");
    return Errors;
  }

  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    const Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    if (Blk.Trees.empty()) {
      Err("B%u: reachable block has no trees", B);
      continue;
    }
    for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
      NodeId Root = Blk.Trees[TI];
      if (Root >= IL.numNodes()) {
        Err("B%u: tree %zu references invalid node", B, TI);
        continue;
      }
      const Node &RootN = IL.node(Root);
      bool IsLast = TI + 1 == Blk.Trees.size();
      if (isTerminatorOp(RootN.Op) != IsLast) {
        Err("B%u: tree %zu (%s) %s", B, TI, ilOpName(RootN.Op),
            IsLast ? "does not terminate the block"
                   : "is a terminator in the middle of a block");
      }
      // Walk the tree checking structure.
      std::vector<NodeId> Stack{Root};
      std::vector<bool> OnPath(IL.numNodes(), false);
      std::vector<NodeId> Visited;
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        const Node &N = IL.node(Id);
        if (Id != Root && isStatementOp(N.Op))
          Err("B%u: statement op %s nested inside a tree", B, ilOpName(N.Op));
        int Want = expectedKids(IL, N);
        if (Want == -2)
          Err("B%u: call node with invalid method index %d", B, N.A);
        else if (Want >= 0 && (int)N.Kids.size() != Want)
          Err("B%u: %s has %u children, expected %d", B, ilOpName(N.Op),
              N.numKids(), Want);
        if (N.Op == ILOp::Return && N.Kids.size() > 1)
          Err("B%u: return with more than one child", B);
        if ((N.Op == ILOp::LoadLocal || N.Op == ILOp::StoreLocal) &&
            (N.A < 0 || (uint32_t)N.A >= IL.numLocals()))
          Err("B%u: local slot %d out of range", B, N.A);
        for (NodeId Kid : N.Kids) {
          if (Kid >= IL.numNodes()) {
            Err("B%u: child id out of range", B);
            continue;
          }
          Stack.push_back(Kid);
        }
      }
    }
    // Successor arity must match the terminator.
    const Node &Term = IL.node(Blk.Trees.back());
    unsigned WantSuccs = 0;
    switch (Term.Op) {
    case ILOp::Branch:
      WantSuccs = 2;
      break;
    case ILOp::Goto:
      WantSuccs = 1;
      break;
    case ILOp::Return:
    case ILOp::Throw:
      WantSuccs = 0;
      break;
    default:
      break;
    }
    if (Blk.Succs.size() != WantSuccs)
      Err("B%u: terminator %s with %zu successors (expected %u)", B,
          ilOpName(Term.Op), Blk.Succs.size(), WantSuccs);
    for (BlockId S : Blk.Succs)
      if (S >= IL.numBlocks())
        Err("B%u: successor out of range", B);
    for (const HandlerRef &H : Blk.Handlers) {
      if (H.Handler >= IL.numBlocks())
        Err("B%u: handler block out of range", B);
      else if (!IL.block(H.Handler).IsHandler)
        Err("B%u: handler edge to non-handler block B%u", B, H.Handler);
    }
  }
  return Errors;
}
