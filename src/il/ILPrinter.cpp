//===- il/ILPrinter.cpp ---------------------------------------------------===//

#include "il/ILPrinter.h"

#include <cstdio>
#include <unordered_set>

using namespace jitml;

namespace {

void printNode(const MethodIL &IL, NodeId Id, unsigned Indent,
               std::unordered_set<NodeId> &Printed, std::string &Out) {
  const Node &N = IL.node(Id);
  char Buf[160];
  Out.append(Indent * 2, ' ');
  if (Printed.count(Id)) {
    std::snprintf(Buf, sizeof(Buf), "==> n%u (commoned)\n", Id);
    Out += Buf;
    return;
  }
  Printed.insert(Id);
  std::snprintf(Buf, sizeof(Buf), "n%u %s", Id, ilOpName(N.Op));
  Out += Buf;
  if (N.Type != DataType::Void) {
    Out += '.';
    Out += dataTypeName(N.Type);
  }
  switch (N.Op) {
  case ILOp::Const:
    if (isFloatType(N.Type))
      std::snprintf(Buf, sizeof(Buf), " %g", N.ConstF);
    else
      std::snprintf(Buf, sizeof(Buf), " %lld", (long long)N.ConstI);
    Out += Buf;
    break;
  case ILOp::LoadLocal:
  case ILOp::StoreLocal:
  case ILOp::LoadGlobal:
  case ILOp::StoreGlobal:
    std::snprintf(Buf, sizeof(Buf), " #%d", N.A);
    Out += Buf;
    break;
  case ILOp::LoadField:
  case ILOp::StoreField:
    std::snprintf(Buf, sizeof(Buf), " @%d", N.A);
    Out += Buf;
    break;
  case ILOp::Call:
    std::snprintf(Buf, sizeof(Buf), " %s%s",
                  IL.program().signatureOf((uint32_t)N.A).c_str(),
                  N.B ? " [virtual]" : "");
    Out += Buf;
    break;
  case ILOp::Branch:
  case ILOp::CmpCond:
    std::snprintf(Buf, sizeof(Buf), " %s", bcCondName((BcCond)N.A));
    Out += Buf;
    break;
  case ILOp::New:
  case ILOp::InstanceOf:
  case ILOp::CastCheck:
    std::snprintf(Buf, sizeof(Buf), " %s",
                  IL.program().classAt((uint32_t)N.A).Name.c_str());
    Out += Buf;
    break;
  default:
    break;
  }
  Out += '\n';
  for (NodeId Kid : N.Kids)
    printNode(IL, Kid, Indent + 1, Printed, Out);
}

} // namespace

std::string jitml::printTree(const MethodIL &IL, NodeId Root) {
  std::string Out;
  std::unordered_set<NodeId> Printed;
  printNode(IL, Root, 0, Printed, Out);
  return Out;
}

std::string jitml::printMethodIL(const MethodIL &IL) {
  std::string Out = "method " +
                    IL.program().signatureOf(IL.methodIndex()) + "\n";
  char Buf[160];
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    const Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    std::snprintf(Buf, sizeof(Buf), "block B%u%s%s freq=%.2f ->", B,
                  B == IL.entryBlock() ? " [entry]" : "",
                  Blk.IsHandler ? " [handler]" : "", Blk.Frequency);
    Out += Buf;
    for (BlockId S : Blk.Succs) {
      std::snprintf(Buf, sizeof(Buf), " B%u", S);
      Out += Buf;
    }
    for (const HandlerRef &H : Blk.Handlers) {
      std::snprintf(Buf, sizeof(Buf), " (catch->B%u)", H.Handler);
      Out += Buf;
    }
    Out += '\n';
    std::unordered_set<NodeId> Printed;
    for (NodeId Tree : Blk.Trees)
      printNode(IL, Tree, 1, Printed, Out);
  }
  return Out;
}
