//===- il/MethodIL.h - Tree IL method representation -----------*- C++ -*-===//
///
/// \file
/// The in-memory IL for one method: a node arena, basic blocks holding
/// treetop lists, and the CFG. This is the representation every one of the
/// 58 controllable transformations operates on, the representation the
/// feature extractor walks "just prior to the start of the optimization
/// stage" (section 4.1), and the input to the code generator.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_IL_METHODIL_H
#define JITML_IL_METHODIL_H

#include "bytecode/Program.h"
#include "il/ILOps.h"

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace jitml {

using NodeId = uint32_t;
using BlockId = uint32_t;
constexpr NodeId InvalidNode = UINT32_MAX;
constexpr BlockId InvalidBlock = UINT32_MAX;

class MethodIL;

/// A node's child list with two inline slots — the unary/binary case that
/// covers almost every IL node — and pool-backed overflow for wider nodes
/// (calls, multi-array allocations). The inline layout removes the
/// per-node heap allocation and the pointer chase a std::vector cost every
/// tree walk in the passes, the feature extractor, the verifier and
/// codegen. Overflow storage lives in MethodIL's kid pool (stable chunk
/// addresses, freed with the method), so KidList itself is move-only and
/// lists wider than two kids are produced through MethodIL::makeNode /
/// MethodIL::setKids, never grown in place.
class KidList {
public:
  static constexpr uint32_t InlineSlots = 2;

  KidList() = default;
  KidList(KidList &&O) noexcept : Ovf(O.Ovf), Count(O.Count) {
    Inline[0] = O.Inline[0];
    Inline[1] = O.Inline[1];
    O.Ovf = nullptr;
    O.Count = 0;
  }
  KidList &operator=(KidList &&O) noexcept {
    Ovf = O.Ovf;
    Inline[0] = O.Inline[0];
    Inline[1] = O.Inline[1];
    Count = O.Count;
    O.Ovf = nullptr;
    O.Count = 0;
    return *this;
  }
  KidList(const KidList &) = delete;
  KidList &operator=(const KidList &) = delete;

  /// In-place assignment of at most two kids — the shape of every rewrite
  /// the expression passes perform. Wider lists must go through
  /// MethodIL::setKids (they need pool storage).
  KidList &operator=(std::initializer_list<NodeId> L) {
    assert(L.size() <= InlineSlots &&
           "inline kid assignment is limited to 2; use MethodIL::setKids");
    Count = (uint32_t)L.size();
    uint32_t I = 0;
    for (NodeId Id : L)
      Inline[I++] = Id;
    return *this;
  }

  NodeId *data() { return Count <= InlineSlots ? Inline : Ovf; }
  const NodeId *data() const { return Count <= InlineSlots ? Inline : Ovf; }
  NodeId *begin() { return data(); }
  NodeId *end() { return data() + Count; }
  const NodeId *begin() const { return data(); }
  const NodeId *end() const { return data() + Count; }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  void clear() { Count = 0; }

  NodeId &operator[](size_t I) {
    assert(I < Count && "kid index out of range");
    return data()[I];
  }
  const NodeId &operator[](size_t I) const {
    assert(I < Count && "kid index out of range");
    return data()[I];
  }

  bool operator==(const KidList &O) const {
    if (Count != O.Count)
      return false;
    const NodeId *A = data(), *B = O.data();
    for (uint32_t I = 0; I < Count; ++I)
      if (A[I] != B[I])
        return false;
    return true;
  }
  bool operator!=(const KidList &O) const { return !(*this == O); }

private:
  friend class MethodIL;
  NodeId *Ovf = nullptr; ///< pool storage when Count > InlineSlots
  NodeId Inline[InlineSlots] = {0, 0};
  uint32_t Count = 0;
};

/// One IL tree node. Nodes live in MethodIL's arena and reference children
/// by id; trees may share subtrees after value numbering (DAG form), which
/// the code generator exploits by emitting shared subtrees once. Nodes are
/// move-only (the kid list may reference pool storage); copy the scalar
/// fields and re-set the kids through MethodIL when duplicating one.
struct Node {
  ILOp Op = ILOp::Const;
  DataType Type = DataType::Void;
  int32_t A = 0;      ///< slot/field/class/method/cond payload (per opcode)
  int32_t B = 0;      ///< secondary payload (e.g. virtual-dispatch flag)
  int64_t ConstI = 0; ///< integer/decimal constant payload
  double ConstF = 0;  ///< floating constant payload
  KidList Kids;

  Node() = default;
  Node(Node &&) = default;
  Node &operator=(Node &&) = default;
  Node(const Node &) = delete;
  Node &operator=(const Node &) = delete;

  bool is(ILOp O) const { return Op == O; }
  unsigned numKids() const { return (unsigned)Kids.size(); }
};

/// Exception handler reachable from a block: the handler block plus the
/// class filter (-1 catches everything).
struct HandlerRef {
  BlockId Handler = InvalidBlock;
  int32_t ClassIndex = -1;
};

/// A basic block: an ordered list of treetops ending in a terminator.
struct Block {
  std::vector<NodeId> Trees;
  std::vector<BlockId> Succs; ///< Branch: [taken, fallthrough]; Goto: [next]
  std::vector<BlockId> Preds;
  std::vector<HandlerRef> Handlers; ///< active try regions, innermost first
  /// Estimated execution frequency relative to entry (1.0); set by loop
  /// analysis and used by cold-block outlining and block layout.
  double Frequency = 1.0;
  bool IsHandler = false; ///< entered with the in-flight exception
  bool Reachable = true;
  /// Set by cold-block outlining: the code generator places cold blocks
  /// after all warm code so they stop polluting the instruction cache.
  bool Cold = false;
};

/// The method-level IL container.
///
/// Every mutation — node/block creation, CFG edits, and any access through
/// the non-const node()/block() accessors — bumps a modification epoch.
/// Two observations of the same epoch therefore guarantee byte-identical
/// IL, which is what lets the optimizer memoize no-change pass runs, lets
/// PassContext cache LoopInfo/dominator/guard-fact analyses, and lets
/// countLiveNodes() serve a cached count (all invalidated by construction
/// the moment anything could have changed). The epoch over-approximates:
/// a mutable accessor bumps even if the caller never writes, which costs
/// only cache hit-rate, never soundness. One compile owns one MethodIL on
/// one thread, so the mutable caches need no synchronization.
class MethodIL {
public:
  MethodIL(const Program &P, uint32_t MethodIndex);
  MethodIL(const MethodIL &) = delete;
  MethodIL &operator=(const MethodIL &) = delete;

  const Program &program() const { return *Prog; }
  uint32_t methodIndex() const { return MethodIndex; }
  const MethodInfo &methodInfo() const { return Prog->methodAt(MethodIndex); }

  // --- Modification epoch ---
  uint64_t modEpoch() const { return ModEpoch; }
  void bumpEpoch() { ++ModEpoch; }

  // --- Node arena ---
  NodeId makeNode(ILOp Op, DataType Type);
  NodeId makeNode(ILOp Op, DataType Type, std::initializer_list<NodeId> Kids);
  NodeId makeNode(ILOp Op, DataType Type, const std::vector<NodeId> &Kids);
  NodeId makeConstI(DataType Type, int64_t V);
  NodeId makeConstF(DataType Type, double V);

  /// Replaces \p Id's kid list with [K, K+N), spilling to the kid pool when
  /// it does not fit the inline slots. The only way to give a node more
  /// than two kids after creation.
  void setKids(NodeId Id, const NodeId *K, size_t N);

  Node &node(NodeId Id) {
    assert(Id < Nodes.size() && "node id out of range");
    ++ModEpoch; // mutable access: assume a write (over-approximate)
    return Nodes[Id];
  }
  const Node &node(NodeId Id) const {
    assert(Id < Nodes.size() && "node id out of range");
    return Nodes[Id];
  }
  uint32_t numNodes() const { return (uint32_t)Nodes.size(); }

  // --- Blocks / CFG ---
  BlockId makeBlock();
  Block &block(BlockId Id) {
    assert(Id < Blocks.size() && "block id out of range");
    ++ModEpoch; // mutable access: assume a write (over-approximate)
    return Blocks[Id];
  }
  const Block &block(BlockId Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }
  uint32_t numBlocks() const { return (uint32_t)Blocks.size(); }
  BlockId entryBlock() const { return Entry; }
  void setEntryBlock(BlockId B) {
    Entry = B;
    ++ModEpoch;
  }

  /// Adds CFG edge From -> To (appends to Succs/Preds).
  void addEdge(BlockId From, BlockId To);
  /// Replaces the edge From -> OldTo with From -> NewTo.
  void replaceEdge(BlockId From, BlockId OldTo, BlockId NewTo);
  /// Recomputes every block's Preds from Succs.
  void recomputePreds();
  /// Marks blocks unreachable from the entry (including via handler edges).
  /// Bumps the epoch only when some block's flag actually changed, so the
  /// unconditional recompute at the head of unreachable-code elimination
  /// stays memoizable when it finds nothing.
  void computeReachability();

  // --- Locals ---
  /// Locals [0, method numArgs) are parameters; the IL generator and the
  /// optimizer may append temporaries.
  uint32_t numLocals() const { return (uint32_t)LocalTypes.size(); }
  DataType localType(uint32_t Slot) const {
    assert(Slot < LocalTypes.size() && "local slot out of range");
    return LocalTypes[Slot];
  }
  uint32_t addLocal(DataType T) {
    LocalTypes.push_back(T);
    ++ModEpoch;
    return (uint32_t)LocalTypes.size() - 1;
  }

  /// Counts nodes reachable from the treetops of reachable blocks; this is
  /// the "tree nodes" scalar feature and the unit the compile-time cost
  /// model charges per pass. The walk is cached per epoch (the optimizer
  /// asks twice per plan entry); JITML_OPT_MEMO=off forces a full rewalk.
  uint32_t countLiveNodes() const;

  /// Returns the blocks in reverse post order from the entry (reachable
  /// blocks only) — the iteration order used by the global passes.
  std::vector<BlockId> reversePostOrder() const;

private:
  NodeId *allocKids(size_t N);
  void assignKids(Node &N, const NodeId *K, size_t Count);

  const Program *Prog;
  uint32_t MethodIndex;
  std::vector<Node> Nodes;
  std::vector<Block> Blocks;
  std::vector<DataType> LocalTypes;
  BlockId Entry = InvalidBlock;
  uint64_t ModEpoch = 0;

  /// Bump-pointer pool for kid lists wider than KidList's inline slots.
  /// Chunk addresses are stable (KidList overflow pointers stay valid
  /// while the method lives); storage is reclaimed with the MethodIL.
  std::vector<std::unique_ptr<NodeId[]>> KidChunks;
  size_t KidChunkUsed = 0;
  size_t KidChunkCap = 0;

  /// countLiveNodes() cache, valid while the epoch matches. Mutable: one
  /// compile owns one MethodIL on one thread (see class comment).
  mutable uint64_t LiveCountEpoch = UINT64_MAX;
  mutable uint32_t LiveCount = 0;
};

} // namespace jitml

#endif // JITML_IL_METHODIL_H
