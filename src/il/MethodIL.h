//===- il/MethodIL.h - Tree IL method representation -----------*- C++ -*-===//
///
/// \file
/// The in-memory IL for one method: a node arena, basic blocks holding
/// treetop lists, and the CFG. This is the representation every one of the
/// 58 controllable transformations operates on, the representation the
/// feature extractor walks "just prior to the start of the optimization
/// stage" (section 4.1), and the input to the code generator.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_IL_METHODIL_H
#define JITML_IL_METHODIL_H

#include "bytecode/Program.h"
#include "il/ILOps.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace jitml {

using NodeId = uint32_t;
using BlockId = uint32_t;
constexpr NodeId InvalidNode = UINT32_MAX;
constexpr BlockId InvalidBlock = UINT32_MAX;

/// One IL tree node. Nodes live in MethodIL's arena and reference children
/// by id; trees may share subtrees after value numbering (DAG form), which
/// the code generator exploits by emitting shared subtrees once.
struct Node {
  ILOp Op = ILOp::Const;
  DataType Type = DataType::Void;
  int32_t A = 0;      ///< slot/field/class/method/cond payload (per opcode)
  int32_t B = 0;      ///< secondary payload (e.g. virtual-dispatch flag)
  int64_t ConstI = 0; ///< integer/decimal constant payload
  double ConstF = 0;  ///< floating constant payload
  std::vector<NodeId> Kids;

  bool is(ILOp O) const { return Op == O; }
  unsigned numKids() const { return (unsigned)Kids.size(); }
};

/// Exception handler reachable from a block: the handler block plus the
/// class filter (-1 catches everything).
struct HandlerRef {
  BlockId Handler = InvalidBlock;
  int32_t ClassIndex = -1;
};

/// A basic block: an ordered list of treetops ending in a terminator.
struct Block {
  std::vector<NodeId> Trees;
  std::vector<BlockId> Succs; ///< Branch: [taken, fallthrough]; Goto: [next]
  std::vector<BlockId> Preds;
  std::vector<HandlerRef> Handlers; ///< active try regions, innermost first
  /// Estimated execution frequency relative to entry (1.0); set by loop
  /// analysis and used by cold-block outlining and block layout.
  double Frequency = 1.0;
  bool IsHandler = false; ///< entered with the in-flight exception
  bool Reachable = true;
  /// Set by cold-block outlining: the code generator places cold blocks
  /// after all warm code so they stop polluting the instruction cache.
  bool Cold = false;
};

/// The method-level IL container.
class MethodIL {
public:
  MethodIL(const Program &P, uint32_t MethodIndex);

  const Program &program() const { return *Prog; }
  uint32_t methodIndex() const { return MethodIndex; }
  const MethodInfo &methodInfo() const { return Prog->methodAt(MethodIndex); }

  // --- Node arena ---
  NodeId makeNode(ILOp Op, DataType Type);
  NodeId makeNode(ILOp Op, DataType Type, std::vector<NodeId> Kids);
  NodeId makeConstI(DataType Type, int64_t V);
  NodeId makeConstF(DataType Type, double V);

  Node &node(NodeId Id) {
    assert(Id < Nodes.size() && "node id out of range");
    return Nodes[Id];
  }
  const Node &node(NodeId Id) const {
    assert(Id < Nodes.size() && "node id out of range");
    return Nodes[Id];
  }
  uint32_t numNodes() const { return (uint32_t)Nodes.size(); }

  // --- Blocks / CFG ---
  BlockId makeBlock();
  Block &block(BlockId Id) {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }
  const Block &block(BlockId Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }
  uint32_t numBlocks() const { return (uint32_t)Blocks.size(); }
  BlockId entryBlock() const { return Entry; }
  void setEntryBlock(BlockId B) { Entry = B; }

  /// Adds CFG edge From -> To (appends to Succs/Preds).
  void addEdge(BlockId From, BlockId To);
  /// Replaces the edge From -> OldTo with From -> NewTo.
  void replaceEdge(BlockId From, BlockId OldTo, BlockId NewTo);
  /// Recomputes every block's Preds from Succs.
  void recomputePreds();
  /// Marks blocks unreachable from the entry (including via handler edges).
  void computeReachability();

  // --- Locals ---
  /// Locals [0, method numArgs) are parameters; the IL generator and the
  /// optimizer may append temporaries.
  uint32_t numLocals() const { return (uint32_t)LocalTypes.size(); }
  DataType localType(uint32_t Slot) const {
    assert(Slot < LocalTypes.size() && "local slot out of range");
    return LocalTypes[Slot];
  }
  uint32_t addLocal(DataType T) {
    LocalTypes.push_back(T);
    return (uint32_t)LocalTypes.size() - 1;
  }

  /// Counts nodes reachable from the treetops of reachable blocks; this is
  /// the "tree nodes" scalar feature and the unit the compile-time cost
  /// model charges per pass.
  uint32_t countLiveNodes() const;

  /// Returns the blocks in reverse post order from the entry (reachable
  /// blocks only) — the iteration order used by the global passes.
  std::vector<BlockId> reversePostOrder() const;

private:
  const Program *Prog;
  uint32_t MethodIndex;
  std::vector<Node> Nodes;
  std::vector<Block> Blocks;
  std::vector<DataType> LocalTypes;
  BlockId Entry = InvalidBlock;
};

} // namespace jitml

#endif // JITML_IL_METHODIL_H
