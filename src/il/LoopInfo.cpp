//===- il/LoopInfo.cpp ----------------------------------------------------===//

#include "il/LoopInfo.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>

using namespace jitml;

bool Loop::contains(BlockId B) const {
  return std::find(Blocks.begin(), Blocks.end(), B) != Blocks.end();
}

namespace {

/// Attempts to recognize the trip count of a loop from one of its exit
/// branches: a Branch comparing LoadLocal against an integer constant.
int64_t estimateTripCount(const MethodIL &IL, const Loop &L) {
  for (BlockId B : L.Blocks) {
    const Block &Blk = IL.block(B);
    if (Blk.Trees.empty())
      continue;
    const Node &Term = IL.node(Blk.Trees.back());
    if (Term.Op != ILOp::Branch)
      continue;
    // An exit branch has one successor outside the loop.
    bool Exits = false;
    for (BlockId S : Blk.Succs)
      if (!L.contains(S))
        Exits = true;
    if (!Exits)
      continue;
    const Node &Lhs = IL.node(Term.Kids[0]);
    const Node &Rhs = IL.node(Term.Kids[1]);
    const Node *Cst = nullptr;
    if (Lhs.Op == ILOp::LoadLocal && Rhs.Op == ILOp::Const &&
        isIntegerType(Rhs.Type))
      Cst = &Rhs;
    else if (Rhs.Op == ILOp::LoadLocal && Lhs.Op == ILOp::Const &&
             isIntegerType(Lhs.Type))
      Cst = &Lhs;
    if (!Cst)
      continue;
    // Conventional shape: induction variable from 0 by +-1 against the
    // bound, so the bound's magnitude approximates the trip count.
    int64_t Bound = std::llabs(Cst->ConstI);
    if (Bound > 0)
      return Bound;
  }
  return -1;
}

} // namespace

LoopInfo::LoopInfo(const MethodIL &IL) {
  DominatorTree DT(IL);
  // Back edge: B -> H where H dominates B. Collect the natural loop by
  // walking predecessors from B until H.
  for (BlockId B : DT.rpo()) {
    for (BlockId H : IL.block(B).Succs) {
      if (!DT.dominates(H, B))
        continue;
      Loop L;
      L.Header = H;
      L.Blocks.push_back(H);
      std::vector<BlockId> Stack;
      if (B != H) {
        L.Blocks.push_back(B);
        Stack.push_back(B);
      }
      while (!Stack.empty()) {
        BlockId Cur = Stack.back();
        Stack.pop_back();
        for (BlockId P : IL.block(Cur).Preds) {
          if (!IL.block(P).Reachable || L.contains(P))
            continue;
          L.Blocks.push_back(P);
          Stack.push_back(P);
        }
      }
      Loops.push_back(std::move(L));
    }
  }
  // Merge loops sharing a header (multiple back edges).
  for (size_t I = 0; I < Loops.size(); ++I) {
    for (size_t J = I + 1; J < Loops.size();) {
      if (Loops[J].Header == Loops[I].Header) {
        for (BlockId B : Loops[J].Blocks)
          if (!Loops[I].contains(B))
            Loops[I].Blocks.push_back(B);
        Loops.erase(Loops.begin() + (std::ptrdiff_t)J);
      } else {
        ++J;
      }
    }
  }
  // Depth: number of loops containing the header.
  for (Loop &L : Loops) {
    unsigned Depth = 0;
    for (const Loop &Other : Loops)
      if (Other.contains(L.Header))
        ++Depth;
    L.Depth = Depth;
  }
  for (Loop &L : Loops)
    L.TripCount = estimateTripCount(IL, L);
}

bool LoopInfo::hasKnownManyIterationLoop() const {
  for (const Loop &L : Loops)
    if (L.TripCount >= ManyIterationThreshold)
      return true;
  return false;
}

bool LoopInfo::mayHaveManyIterationLoop() const {
  if (hasKnownManyIterationLoop())
    return true;
  for (const Loop &L : Loops)
    if (L.TripCount < 0 || L.Depth >= 2)
      return true;
  return false;
}

LoopClass LoopInfo::classify() const {
  if (Loops.empty())
    return LoopClass::NoLoops;
  if (hasKnownManyIterationLoop() || mayHaveManyIterationLoop())
    return LoopClass::ManyIterationLoops;
  return LoopClass::MayHaveLoops;
}

const Loop *LoopInfo::loopFor(BlockId B) const {
  const Loop *Best = nullptr;
  for (const Loop &L : Loops)
    if (L.contains(B) && (!Best || L.Depth > Best->Depth))
      Best = &L;
  return Best;
}

unsigned LoopInfo::depthOf(BlockId B) const {
  const Loop *L = loopFor(B);
  return L ? L->Depth : 0;
}

bool LoopInfo::annotateFrequencies(MethodIL &IL) {
  LoopInfo LI(IL);
  return annotateFrequencies(IL, LI);
}

bool LoopInfo::annotateFrequencies(MethodIL &IL, const LoopInfo &LI) {
  const MethodIL &CIL = IL;
  bool Changed = false;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    if (!CIL.block(B).Reachable)
      continue;
    double Freq = 1.0;
    const Loop *L = LI.loopFor(B);
    if (L) {
      double PerLevel =
          L->TripCount > 0 ? (double)std::min<int64_t>(L->TripCount, 10) : 8.0;
      for (unsigned D = 0; D < L->Depth; ++D)
        Freq *= PerLevel;
    }
    if (CIL.block(B).IsHandler)
      Freq = 0.01;
    // Write (and bump the epoch) only on change, so a re-annotation that
    // finds the frequencies already correct stays memoizable.
    if (CIL.block(B).Frequency != Freq) {
      IL.block(B).Frequency = Freq;
      Changed = true;
    }
  }
  return Changed;
}
