//===- il/ILOps.h - Tree IL opcodes ----------------------------*- C++ -*-===//
///
/// \file
/// Opcodes of the tree-form intermediate language. Like Testarossa's IL
/// (paper section 2), the IL is "used as both input and output during the
/// optimization process": methods are lists of treetops grouped into basic
/// blocks, and every optimization consumes and produces the same form.
/// Checks (null, bounds, division, cast) are explicit treetops so that
/// check-elimination transformations can remove them.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_IL_ILOPS_H
#define JITML_IL_ILOPS_H

#include "bytecode/Opcode.h"
#include "bytecode/Type.h"

#include <cstdint>

namespace jitml {

enum class ILOp : uint8_t {
  // --- Expressions ---
  Const = 0,    ///< constant of Type (ConstI or ConstF payload)
  LoadLocal,    ///< A = local slot
  LoadGlobal,   ///< A = global slot
  LoadField,    ///< A = field index; child 0 = object
  LoadElem,     ///< children: array, index
  ArrayLen,     ///< child: array
  LoadException,///< the in-flight exception at a handler entry
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Neg,
  Shl,
  Shr,
  Or,
  And,
  Xor,
  Cmp,          ///< three-way compare of children, yields Int32
  CmpCond,      ///< A = BcCond; children lhs, rhs; yields 0/1 Int32
  Conv,         ///< A = source DataType; child 0 = value
  Call,         ///< A = method index, B = 1 for virtual dispatch
  New,          ///< A = class index
  NewArray,     ///< Type = element type; child 0 = length
  NewMultiArray,///< Type = element type; A = dims; children = lengths
  InstanceOf,   ///< A = class index; child 0 = object
  ArrayCmp,     ///< children: two arrays; yields Int32

  // --- Statements (treetops) ---
  StoreLocal,   ///< A = slot; child 0 = value
  StoreGlobal,  ///< A = slot; child 0 = value
  StoreField,   ///< A = field; children: object, value
  StoreElem,    ///< children: array, index, value
  NullCheck,    ///< child: reference that must be nonnull
  BoundsCheck,  ///< children: array, index
  DivCheck,     ///< child: integer divisor that must be nonzero
  CastCheck,    ///< A = class index; child: reference being cast
  MonitorEnter, ///< child: object
  MonitorExit,  ///< child: object
  ArrayCopy,    ///< children: src, srcPos, dst, dstPos, len
  ExprStmt,     ///< child evaluated for side effects (e.g. discarded call)
  Branch,       ///< A = BcCond; children lhs, rhs; block has two successors
  Goto,         ///< unconditional; block has one successor
  Return,       ///< child 0 = value unless method returns void
  Throw,        ///< child: exception reference
};

const char *ilOpName(ILOp Op);

/// True for opcodes that must appear only as treetops (statement roots).
inline bool isStatementOp(ILOp Op) {
  switch (Op) {
  case ILOp::StoreLocal:
  case ILOp::StoreGlobal:
  case ILOp::StoreField:
  case ILOp::StoreElem:
  case ILOp::NullCheck:
  case ILOp::BoundsCheck:
  case ILOp::DivCheck:
  case ILOp::CastCheck:
  case ILOp::MonitorEnter:
  case ILOp::MonitorExit:
  case ILOp::ArrayCopy:
  case ILOp::ExprStmt:
  case ILOp::Branch:
  case ILOp::Goto:
  case ILOp::Return:
  case ILOp::Throw:
    return true;
  default:
    return false;
  }
}

/// Terminator treetops end a basic block.
inline bool isTerminatorOp(ILOp Op) {
  switch (Op) {
  case ILOp::Branch:
  case ILOp::Goto:
  case ILOp::Return:
  case ILOp::Throw:
    return true;
  default:
    return false;
  }
}

/// Expressions with side effects (cannot be removed even when unused, and
/// block most code motion).
inline bool hasSideEffects(ILOp Op) {
  switch (Op) {
  case ILOp::Call:
  case ILOp::New:
  case ILOp::NewArray:
  case ILOp::NewMultiArray:
    return true;
  default:
    return isStatementOp(Op);
  }
}

/// Expressions that read mutable memory (fields, array elements, globals);
/// value numbering must kill them across stores and calls.
inline bool readsMemory(ILOp Op) {
  switch (Op) {
  case ILOp::LoadGlobal:
  case ILOp::LoadField:
  case ILOp::LoadElem:
  case ILOp::ArrayLen: // array length is immutable, but keep it simple here
    return true;
  default:
    return false;
  }
}

/// Binary integer/float arithmetic usable by folding and reassociation.
inline bool isArithOp(ILOp Op) {
  switch (Op) {
  case ILOp::Add:
  case ILOp::Sub:
  case ILOp::Mul:
  case ILOp::Div:
  case ILOp::Rem:
  case ILOp::Shl:
  case ILOp::Shr:
  case ILOp::Or:
  case ILOp::And:
  case ILOp::Xor:
    return true;
  default:
    return false;
  }
}

/// Commutative operations (reassociation and CSE canonicalize these).
inline bool isCommutative(ILOp Op) {
  switch (Op) {
  case ILOp::Add:
  case ILOp::Mul:
  case ILOp::Or:
  case ILOp::And:
  case ILOp::Xor:
    return true;
  default:
    return false;
  }
}

/// Opcodes that can raise a runtime exception and therefore end the
/// "can't reorder past this" region inside a block.
inline bool ilCanThrow(ILOp Op) {
  switch (Op) {
  case ILOp::NullCheck:
  case ILOp::BoundsCheck:
  case ILOp::DivCheck:
  case ILOp::CastCheck:
  case ILOp::Call:
  case ILOp::New:
  case ILOp::NewArray:
  case ILOp::NewMultiArray:
  case ILOp::Throw:
  case ILOp::ArrayCopy:
  case ILOp::ArrayCmp:
  case ILOp::MonitorEnter:
  case ILOp::MonitorExit:
    return true;
  default:
    return false;
  }
}

} // namespace jitml

#endif // JITML_IL_ILOPS_H
