//===- il/ILPrinter.h - Textual IL dumps ------------------------*- C++ -*-===//
///
/// \file
/// Renders a MethodIL as indented trees grouped by block — the main
/// debugging aid when writing optimization passes.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_IL_ILPRINTER_H
#define JITML_IL_ILPRINTER_H

#include "il/MethodIL.h"

#include <string>

namespace jitml {

/// Renders a single tree rooted at \p Root.
std::string printTree(const MethodIL &IL, NodeId Root);

/// Renders all reachable blocks with CFG edges and handler annotations.
std::string printMethodIL(const MethodIL &IL);

} // namespace jitml

#endif // JITML_IL_ILPRINTER_H
