//===- il/Dominators.cpp --------------------------------------------------===//

#include "il/Dominators.h"

using namespace jitml;

DominatorTree::DominatorTree(const MethodIL &IL) {
  uint32_t N = IL.numBlocks();
  Idom.assign(N, InvalidBlock);
  RpoIndex.assign(N, UINT32_MAX);
  Rpo = IL.reversePostOrder();
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  // Predecessors including handler edges (a handler's preds are all blocks
  // that list it in Handlers).
  std::vector<std::vector<BlockId>> Preds(N);
  for (BlockId B = 0; B < N; ++B) {
    if (RpoIndex[B] == UINT32_MAX)
      continue;
    for (BlockId S : IL.block(B).Succs)
      Preds[S].push_back(B);
    for (const HandlerRef &H : IL.block(B).Handlers)
      Preds[H.Handler].push_back(B);
  }

  BlockId Entry = IL.entryBlock();
  Idom[Entry] = Entry;

  auto Intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Rpo) {
      if (B == Entry)
        continue;
      BlockId NewIdom = InvalidBlock;
      for (BlockId P : Preds[B]) {
        if (Idom[P] == InvalidBlock)
          continue; // not yet processed
        NewIdom = NewIdom == InvalidBlock ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != InvalidBlock && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(BlockId A, BlockId B) const {
  if (Idom[B] == InvalidBlock || Idom[A] == InvalidBlock)
    return false;
  while (true) {
    if (A == B)
      return true;
    BlockId Up = Idom[B];
    if (Up == B)
      return false; // reached the entry
    B = Up;
  }
}
