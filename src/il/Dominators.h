//===- il/Dominators.h - Dominator tree over the block CFG -----*- C++ -*-===//
///
/// \file
/// Iterative dominator computation (Cooper-Harvey-Kennedy). Used by loop
/// detection, loop-invariant code motion, and the dominator-scoped value
/// numbering in global CSE.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_IL_DOMINATORS_H
#define JITML_IL_DOMINATORS_H

#include "il/MethodIL.h"

#include <vector>

namespace jitml {

/// Immediate-dominator table for the reachable portion of a CFG. Handler
/// edges participate as ordinary edges so code motion never crosses into a
/// handler incorrectly.
class DominatorTree {
public:
  explicit DominatorTree(const MethodIL &IL);

  /// Immediate dominator of \p B; the entry block's idom is itself.
  /// InvalidBlock for unreachable blocks.
  BlockId idom(BlockId B) const { return Idom[B]; }

  /// True when \p A dominates \p B (reflexive).
  bool dominates(BlockId A, BlockId B) const;

  /// Blocks in reverse post order (reachable only) — handy for passes that
  /// want dominators and a consistent visit order.
  const std::vector<BlockId> &rpo() const { return Rpo; }

private:
  std::vector<BlockId> Idom;
  std::vector<uint32_t> RpoIndex; ///< UINT32_MAX for unreachable
  std::vector<BlockId> Rpo;
};

} // namespace jitml

#endif // JITML_IL_DOMINATORS_H
