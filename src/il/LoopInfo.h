//===- il/LoopInfo.h - Natural-loop detection and classification -*-C++-*-===//
///
/// \file
/// Natural-loop analysis over the IL CFG. Provides the loop facts the rest
/// of the system depends on:
///  * the Table 1 loop attributes ("may have loops?", "many-iteration
///    loops?", "may have many-iteration loops?") — the latter "based on
///    loop-count thresholds and on the presence of nested loops";
///  * the loop-class used by compilation control to pick among the three
///    per-level recompilation triggers (footnote 6 of the paper);
///  * block frequency estimates consumed by layout/outlining passes;
///  * the loop structures the loop transformations operate on.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_IL_LOOPINFO_H
#define JITML_IL_LOOPINFO_H

#include "il/Dominators.h"
#include "il/MethodIL.h"

#include <vector>

namespace jitml {

/// One natural loop: all blocks reaching the back edge without leaving the
/// header's dominance region.
struct Loop {
  BlockId Header = InvalidBlock;
  std::vector<BlockId> Blocks; ///< includes the header
  unsigned Depth = 1;          ///< 1 = outermost
  /// Estimated iterations: recognized from `local <cmp> const` exit tests
  /// with the conventional start-at-zero step-one shape; -1 when unknown.
  int64_t TripCount = -1;

  bool contains(BlockId B) const;
};

/// Loop classification used by both the feature extractor and the
/// compilation-control triggers.
enum class LoopClass : uint8_t {
  NoLoops = 0,        ///< no backward edge
  MayHaveLoops,       ///< loops whose bounds look small/unknown
  ManyIterationLoops, ///< known-large trip count or nested loops
};

class LoopInfo {
public:
  /// Threshold above which a known trip count classifies as many-iteration.
  static constexpr int64_t ManyIterationThreshold = 100;

  explicit LoopInfo(const MethodIL &IL);

  const std::vector<Loop> &loops() const { return Loops; }
  bool hasLoops() const { return !Loops.empty(); }
  /// True when some loop is provably long-running (trip count above the
  /// threshold).
  bool hasKnownManyIterationLoop() const;
  /// True when a loop *may* be long-running: unknown bounds or nesting.
  bool mayHaveManyIterationLoop() const;
  LoopClass classify() const;

  /// Innermost loop containing \p B, or nullptr.
  const Loop *loopFor(BlockId B) const;
  unsigned depthOf(BlockId B) const;

  /// Writes frequency estimates into the blocks of \p IL: entry 1.0,
  /// multiplied by min(TripCount, 10) per nesting level, halved on each
  /// side of a branch, and 0.01 for handler blocks. Blocks already carrying
  /// the computed value are left untouched (no epoch bump), so callers that
  /// re-annotate an unchanged CFG stay memoizable. Returns true when any
  /// frequency actually moved — passes must surface that as a change so
  /// the epoch bump is accounted for rather than silently invalidating
  /// every downstream memo entry.
  static bool annotateFrequencies(MethodIL &IL);
  /// Same, reusing an already-built LoopInfo for \p IL (e.g. the
  /// PassContext-cached one) instead of rebuilding the analysis.
  static bool annotateFrequencies(MethodIL &IL, const LoopInfo &LI);

private:
  std::vector<Loop> Loops;
};

} // namespace jitml

#endif // JITML_IL_LOOPINFO_H
