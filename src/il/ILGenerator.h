//===- il/ILGenerator.h - Bytecode -> tree IL -------------------*- C++ -*-===//
///
/// \file
/// The IL Generator of Figure 1: converts verified stack bytecode into the
/// tree-form IL by abstract interpretation of the operand stack. Runtime
/// checks (null, bounds, division, cast) become explicit treetops; calls and
/// allocations are anchored at their bytecode position so evaluation order
/// is preserved under the IL's evaluate-at-first-reference (DAG) semantics;
/// values live across block boundaries are spilled to synthetic locals.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_IL_ILGENERATOR_H
#define JITML_IL_ILGENERATOR_H

#include "il/MethodIL.h"

#include <memory>

namespace jitml {

/// Generates the IL for \p MethodIndex. The bytecode must already verify;
/// malformed input trips assertions rather than returning errors.
std::unique_ptr<MethodIL> generateIL(const Program &P, uint32_t MethodIndex);

} // namespace jitml

#endif // JITML_IL_ILGENERATOR_H
