//===- il/ILGenerator.cpp -------------------------------------------------===//

#include "il/ILGenerator.h"

#include "bytecode/Verifier.h"

#include <algorithm>
#include <deque>
#include <map>

using namespace jitml;

namespace {

/// One abstract operand-stack entry during generation.
struct StackEntry {
  NodeId Node = InvalidNode;
  DataType Type = DataType::Void;
};

class Generator {
public:
  Generator(const Program &P, uint32_t MethodIndex)
      : Prog(P), M(P.methodAt(MethodIndex)),
        IL(std::make_unique<MethodIL>(P, MethodIndex)) {}

  std::unique_ptr<MethodIL> run();

private:
  void findLeaders();
  void computeEntryStacks();
  void generateBlock(uint32_t LeaderPc);

  StackEntry pop() {
    assert(!Stack.empty() && "pop from empty abstract stack");
    StackEntry E = Stack.back();
    Stack.pop_back();
    return E;
  }
  void push(NodeId N) {
    Stack.push_back({N, IL->node(N).Type});
  }
  void addTree(NodeId Tree) { IL->block(CurBlock).Trees.push_back(Tree); }

  /// Emits an ExprStmt treetop anchoring \p N at the current position so
  /// that its value is computed here and merely reused later.
  void anchor(NodeId N) {
    addTree(IL->makeNode(ILOp::ExprStmt, DataType::Void, {N}));
  }

  /// Anchors pending stack entries that a store/call about to be emitted
  /// could invalidate. \p KilledLocal is the local slot being written
  /// (-1 when the kill is a memory write or call).
  void anchorConflicts(int32_t KilledLocal, bool KillsMemory);

  /// Spills the abstract stack to the synthetic stack-temp locals used at
  /// block boundaries. Leaves the stack empty.
  void spillStack();

  /// Returns the stack-temp local slot for stack position \p Depth holding
  /// type \p T, creating it on first use.
  uint32_t stackTempSlot(unsigned Depth, DataType T);

  /// Finishes the current block with a fallthrough Goto to \p TargetPc.
  void fallthroughTo(uint32_t TargetPc);

  BlockId blockAtPc(uint32_t Pc) const {
    auto It = BlockOfLeader.find(Pc);
    assert(It != BlockOfLeader.end() && "no block at target pc");
    return It->second;
  }

  const Program &Prog;
  const MethodInfo &M;
  std::unique_ptr<MethodIL> IL;

  std::vector<uint32_t> Leaders;              ///< sorted leader pcs
  std::map<uint32_t, BlockId> BlockOfLeader;
  std::map<uint32_t, std::vector<DataType>> EntryTypesAt; ///< per leader pc
  std::vector<bool> IsHandlerPc;
  std::map<std::pair<unsigned, DataType>, uint32_t> StackTemps;

  std::vector<StackEntry> Stack;
  BlockId CurBlock = InvalidBlock;
};

void Generator::findLeaders() {
  std::vector<bool> Leader(M.Code.size(), false);
  IsHandlerPc.assign(M.Code.size(), false);
  Leader[0] = true;
  for (uint32_t Pc = 0; Pc < M.Code.size(); ++Pc) {
    const BcInst &I = M.Code[Pc];
    switch (I.Op) {
    case BcOp::IfCmp:
    case BcOp::If:
    case BcOp::IfRef:
      Leader[(uint32_t)I.B] = true;
      if (Pc + 1 < M.Code.size())
        Leader[Pc + 1] = true;
      break;
    case BcOp::Goto:
      Leader[(uint32_t)I.A] = true;
      if (Pc + 1 < M.Code.size())
        Leader[Pc + 1] = true;
      break;
    case BcOp::Return:
    case BcOp::Throw:
      if (Pc + 1 < M.Code.size())
        Leader[Pc + 1] = true;
      break;
    default:
      break;
    }
  }
  for (const ExceptionEntry &E : M.ExceptionTable) {
    Leader[E.HandlerPc] = true;
    IsHandlerPc[E.HandlerPc] = true;
    // Try boundaries are leaders so a block never straddles a region edge.
    Leader[E.StartPc] = true;
    if (E.EndPc < M.Code.size())
      Leader[E.EndPc] = true;
  }
  for (uint32_t Pc = 0; Pc < M.Code.size(); ++Pc)
    if (Leader[Pc])
      Leaders.push_back(Pc);
  for (uint32_t Pc : Leaders) {
    BlockId B = IL->makeBlock();
    BlockOfLeader[Pc] = B;
    IL->block(B).IsHandler = IsHandlerPc[Pc];
  }
  IL->setEntryBlock(BlockOfLeader[0]);

  // Attach handler references: a block is covered by every try region that
  // contains its leader pc. Innermost (smallest) regions first.
  struct Region {
    uint32_t Size;
    HandlerRef Ref;
    uint32_t Start, End;
  };
  for (uint32_t Pc : Leaders) {
    std::vector<Region> Covering;
    for (const ExceptionEntry &E : M.ExceptionTable)
      if (Pc >= E.StartPc && Pc < E.EndPc)
        Covering.push_back({E.EndPc - E.StartPc,
                            {blockAtPc(E.HandlerPc), E.ClassIndex},
                            E.StartPc, E.EndPc});
    std::stable_sort(Covering.begin(), Covering.end(),
                     [](const Region &A, const Region &B) {
                       return A.Size < B.Size;
                     });
    for (const Region &R : Covering)
      IL->block(blockAtPc(Pc)).Handlers.push_back(R.Ref);
  }
}

void Generator::computeEntryStacks() {
  // Propagates type stacks to every leader. The code is verified, so depths
  // agree at joins; we simply record the first stack seen per leader.
  std::map<uint32_t, std::vector<DataType>> AtPc;
  std::deque<uint32_t> Work;
  AtPc[0] = {};
  Work.push_back(0);
  for (const ExceptionEntry &E : M.ExceptionTable) {
    if (!AtPc.count(E.HandlerPc)) {
      AtPc[E.HandlerPc] = {DataType::Object};
      Work.push_back(E.HandlerPc);
    }
  }
  std::vector<bool> Visited(M.Code.size(), false);
  while (!Work.empty()) {
    uint32_t Pc = Work.front();
    Work.pop_front();
    if (Visited[Pc])
      continue;
    Visited[Pc] = true;
    std::vector<DataType> TypeStack = AtPc[Pc];
    const BcInst &I = M.Code[Pc];
    unsigned Pops = 0, Pushes = 0;
    bool Ok = stackEffect(Prog, M, I, Pops, Pushes);
    assert(Ok && "unverified bytecode reached IL generation");
    (void)Ok;
    assert(TypeStack.size() >= Pops && "stack underflow in verified code");
    for (unsigned K = 0; K < Pops; ++K)
      TypeStack.pop_back();
    if (Pushes == 1) {
      DataType T = I.Type;
      switch (I.Op) {
      case BcOp::ArrayLen:
      case BcOp::Cmp:
      case BcOp::InstanceOf:
      case BcOp::ArrayCmp:
        T = DataType::Int32;
        break;
      case BcOp::New:
        T = DataType::Object;
        break;
      case BcOp::NewArray:
      case BcOp::NewMultiArray:
        T = DataType::Address;
        break;
      case BcOp::CheckCast:
        T = DataType::Object;
        break;
      default:
        break;
      }
      TypeStack.push_back(T);
    } else if (Pushes == 2) {
      assert(I.Op == BcOp::Dup && "only dup pushes two values");
      TypeStack.push_back(I.Type);
      TypeStack.push_back(I.Type);
    }

    auto FlowTo = [&](uint32_t Target) {
      if (!AtPc.count(Target)) {
        AtPc[Target] = TypeStack;
        Work.push_back(Target);
      }
    };
    switch (I.Op) {
    case BcOp::IfCmp:
    case BcOp::If:
    case BcOp::IfRef:
      FlowTo((uint32_t)I.B);
      FlowTo(Pc + 1);
      break;
    case BcOp::Goto:
      FlowTo((uint32_t)I.A);
      break;
    case BcOp::Return:
    case BcOp::Throw:
      break;
    default:
      FlowTo(Pc + 1);
      break;
    }
  }
  for (uint32_t Pc : Leaders)
    if (AtPc.count(Pc))
      EntryTypesAt[Pc] = AtPc[Pc];
}

uint32_t Generator::stackTempSlot(unsigned Depth, DataType T) {
  auto Key = std::make_pair(Depth, T);
  auto It = StackTemps.find(Key);
  if (It != StackTemps.end())
    return It->second;
  uint32_t Slot = IL->addLocal(T);
  StackTemps.emplace(Key, Slot);
  return Slot;
}

void Generator::spillStack() {
  for (unsigned D = 0; D < Stack.size(); ++D) {
    uint32_t Slot = stackTempSlot(D, Stack[D].Type);
    NodeId Store =
        IL->makeNode(ILOp::StoreLocal, DataType::Void, {Stack[D].Node});
    IL->node(Store).A = (int32_t)Slot;
    addTree(Store);
  }
  Stack.clear();
}

void Generator::anchorConflicts(int32_t KilledLocal, bool KillsMemory) {
  for (StackEntry &E : Stack) {
    const Node &N = IL->node(E.Node);
    bool Conflicts = false;
    if (KilledLocal >= 0 && N.Op == ILOp::LoadLocal && N.A == KilledLocal)
      Conflicts = true;
    if (KillsMemory && readsMemory(N.Op))
      Conflicts = true;
    if (Conflicts)
      anchor(E.Node);
  }
}

void Generator::fallthroughTo(uint32_t TargetPc) {
  spillStack();
  addTree(IL->makeNode(ILOp::Goto, DataType::Void));
  IL->addEdge(CurBlock, blockAtPc(TargetPc));
}

void Generator::generateBlock(uint32_t LeaderPc) {
  CurBlock = blockAtPc(LeaderPc);
  Stack.clear();

  if (!EntryTypesAt.count(LeaderPc)) {
    // Statically unreachable block (e.g. code after an unconditional
    // branch with no inbound edges). Emit a trivial terminator.
    if (M.ReturnType == DataType::Void) {
      addTree(IL->makeNode(ILOp::Return, DataType::Void));
    } else {
      NodeId Zero = isFloatType(M.ReturnType)
                        ? IL->makeConstF(M.ReturnType, 0.0)
                        : IL->makeConstI(M.ReturnType, 0);
      addTree(IL->makeNode(ILOp::Return, DataType::Void, {Zero}));
    }
    return;
  }

  const std::vector<DataType> &EntryTypes = EntryTypesAt[LeaderPc];
  if (IsHandlerPc[LeaderPc]) {
    assert(EntryTypes.size() == 1 && "handler entry stack must be [exc]");
    push(IL->makeNode(ILOp::LoadException, DataType::Object));
  } else {
    for (unsigned D = 0; D < EntryTypes.size(); ++D) {
      uint32_t Slot = stackTempSlot(D, EntryTypes[D]);
      NodeId Load = IL->makeNode(ILOp::LoadLocal, EntryTypes[D]);
      IL->node(Load).A = (int32_t)Slot;
      push(Load);
    }
  }

  uint32_t EndPc = (uint32_t)M.Code.size();
  auto NextLeader = std::upper_bound(Leaders.begin(), Leaders.end(), LeaderPc);
  if (NextLeader != Leaders.end())
    EndPc = *NextLeader;

  for (uint32_t Pc = LeaderPc; Pc < EndPc; ++Pc) {
    const BcInst &I = M.Code[Pc];
    switch (I.Op) {
    case BcOp::Nop:
      break;
    case BcOp::Const:
      if (isFloatType(I.Type))
        push(IL->makeConstF(I.Type, I.ImmF));
      else
        push(IL->makeConstI(I.Type, I.ImmI));
      break;
    case BcOp::Load: {
      NodeId N = IL->makeNode(ILOp::LoadLocal, I.Type);
      IL->node(N).A = I.A;
      push(N);
      break;
    }
    case BcOp::Store: {
      StackEntry V = pop();
      anchorConflicts(I.A, /*KillsMemory=*/false);
      NodeId Store = IL->makeNode(ILOp::StoreLocal, DataType::Void, {V.Node});
      IL->node(Store).A = I.A;
      addTree(Store);
      break;
    }
    case BcOp::Inc: {
      anchorConflicts(I.A, /*KillsMemory=*/false);
      NodeId LoadN = IL->makeNode(ILOp::LoadLocal, I.Type);
      IL->node(LoadN).A = I.A;
      NodeId AddN = IL->makeNode(ILOp::Add, I.Type,
                                 {LoadN, IL->makeConstI(I.Type, I.B)});
      NodeId Store = IL->makeNode(ILOp::StoreLocal, DataType::Void, {AddN});
      IL->node(Store).A = I.A;
      addTree(Store);
      break;
    }
    case BcOp::GetField: {
      StackEntry Obj = pop();
      addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {Obj.Node}));
      NodeId N = IL->makeNode(ILOp::LoadField, I.Type, {Obj.Node});
      IL->node(N).A = I.A;
      push(N);
      break;
    }
    case BcOp::PutField: {
      StackEntry Val = pop();
      StackEntry Obj = pop();
      addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {Obj.Node}));
      anchorConflicts(-1, /*KillsMemory=*/true);
      NodeId N = IL->makeNode(ILOp::StoreField, DataType::Void,
                              {Obj.Node, Val.Node});
      IL->node(N).A = I.A;
      addTree(N);
      break;
    }
    case BcOp::GetGlobal: {
      NodeId N = IL->makeNode(ILOp::LoadGlobal, I.Type);
      IL->node(N).A = I.A;
      push(N);
      break;
    }
    case BcOp::PutGlobal: {
      StackEntry Val = pop();
      anchorConflicts(-1, /*KillsMemory=*/true);
      NodeId N = IL->makeNode(ILOp::StoreGlobal, DataType::Void, {Val.Node});
      IL->node(N).A = I.A;
      addTree(N);
      break;
    }
    case BcOp::ALoad: {
      StackEntry Idx = pop();
      StackEntry Arr = pop();
      addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {Arr.Node}));
      addTree(IL->makeNode(ILOp::BoundsCheck, DataType::Void,
                           {Arr.Node, Idx.Node}));
      push(IL->makeNode(ILOp::LoadElem, I.Type, {Arr.Node, Idx.Node}));
      break;
    }
    case BcOp::AStore: {
      StackEntry Val = pop();
      StackEntry Idx = pop();
      StackEntry Arr = pop();
      addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {Arr.Node}));
      addTree(IL->makeNode(ILOp::BoundsCheck, DataType::Void,
                           {Arr.Node, Idx.Node}));
      anchorConflicts(-1, /*KillsMemory=*/true);
      addTree(IL->makeNode(ILOp::StoreElem, DataType::Void,
                           {Arr.Node, Idx.Node, Val.Node}));
      break;
    }
    case BcOp::ArrayLen: {
      StackEntry Arr = pop();
      addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {Arr.Node}));
      push(IL->makeNode(ILOp::ArrayLen, DataType::Int32, {Arr.Node}));
      break;
    }
    case BcOp::Add:
    case BcOp::Sub:
    case BcOp::Mul:
    case BcOp::Shl:
    case BcOp::Shr:
    case BcOp::Or:
    case BcOp::And:
    case BcOp::Xor: {
      static_assert((int)BcOp::Add + 1 == (int)BcOp::Sub, "opcode layout");
      StackEntry R = pop();
      StackEntry L = pop();
      ILOp Op;
      switch (I.Op) {
      case BcOp::Add:
        Op = ILOp::Add;
        break;
      case BcOp::Sub:
        Op = ILOp::Sub;
        break;
      case BcOp::Mul:
        Op = ILOp::Mul;
        break;
      case BcOp::Shl:
        Op = ILOp::Shl;
        break;
      case BcOp::Shr:
        Op = ILOp::Shr;
        break;
      case BcOp::Or:
        Op = ILOp::Or;
        break;
      case BcOp::And:
        Op = ILOp::And;
        break;
      default:
        Op = ILOp::Xor;
        break;
      }
      push(IL->makeNode(Op, I.Type, {L.Node, R.Node}));
      break;
    }
    case BcOp::Div:
    case BcOp::Rem: {
      StackEntry R = pop();
      StackEntry L = pop();
      if (isIntegerType(I.Type) || isDecimalType(I.Type))
        addTree(IL->makeNode(ILOp::DivCheck, DataType::Void, {R.Node}));
      push(IL->makeNode(I.Op == BcOp::Div ? ILOp::Div : ILOp::Rem, I.Type,
                        {L.Node, R.Node}));
      break;
    }
    case BcOp::Neg: {
      StackEntry V = pop();
      push(IL->makeNode(ILOp::Neg, I.Type, {V.Node}));
      break;
    }
    case BcOp::Cmp: {
      StackEntry R = pop();
      StackEntry L = pop();
      NodeId N = IL->makeNode(ILOp::Cmp, DataType::Int32, {L.Node, R.Node});
      IL->node(N).B = (int32_t)I.Type; // operand type
      push(N);
      break;
    }
    case BcOp::Conv: {
      StackEntry V = pop();
      NodeId N = IL->makeNode(ILOp::Conv, I.Type, {V.Node});
      IL->node(N).A = I.A; // source type
      push(N);
      break;
    }
    case BcOp::IfCmp: {
      StackEntry R = pop();
      StackEntry L = pop();
      spillStack();
      NodeId Br =
          IL->makeNode(ILOp::Branch, DataType::Void, {L.Node, R.Node});
      IL->node(Br).A = I.A;
      addTree(Br);
      IL->addEdge(CurBlock, blockAtPc((uint32_t)I.B));
      if (Pc + 1 < M.Code.size())
        IL->addEdge(CurBlock, blockAtPc(Pc + 1));
      return;
    }
    case BcOp::If:
    case BcOp::IfRef: {
      StackEntry V = pop();
      spillStack();
      NodeId Zero = I.Op == BcOp::If ? IL->makeConstI(DataType::Int32, 0)
                                     : IL->makeConstI(DataType::Object, 0);
      NodeId Br =
          IL->makeNode(ILOp::Branch, DataType::Void, {V.Node, Zero});
      // IfRef: A==0 branches when null (Eq), A==1 when nonnull (Ne).
      IL->node(Br).A = I.Op == BcOp::If
                           ? I.A
                           : (int32_t)(I.A == 0 ? BcCond::Eq : BcCond::Ne);
      addTree(Br);
      IL->addEdge(CurBlock, blockAtPc((uint32_t)I.B));
      if (Pc + 1 < M.Code.size())
        IL->addEdge(CurBlock, blockAtPc(Pc + 1));
      return;
    }
    case BcOp::Goto: {
      spillStack();
      addTree(IL->makeNode(ILOp::Goto, DataType::Void));
      IL->addEdge(CurBlock, blockAtPc((uint32_t)I.A));
      return;
    }
    case BcOp::Call:
    case BcOp::CallVirtual: {
      const MethodInfo &Callee = Prog.methodAt((uint32_t)I.A);
      std::vector<NodeId> Args(Callee.numArgs());
      for (unsigned K = Callee.numArgs(); K-- > 0;)
        Args[K] = pop().Node;
      if (I.Op == BcOp::CallVirtual)
        addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {Args[0]}));
      anchorConflicts(-1, /*KillsMemory=*/true);
      NodeId CallN =
          IL->makeNode(ILOp::Call, Callee.ReturnType, std::move(Args));
      IL->node(CallN).A = I.A;
      IL->node(CallN).B = I.Op == BcOp::CallVirtual ? 1 : 0;
      // Anchor the call here so it executes at bytecode order even when its
      // value is consumed by a later treetop.
      anchor(CallN);
      if (Callee.ReturnType != DataType::Void)
        push(CallN);
      break;
    }
    case BcOp::Return: {
      if (M.ReturnType == DataType::Void) {
        addTree(IL->makeNode(ILOp::Return, DataType::Void));
      } else {
        StackEntry V = pop();
        addTree(IL->makeNode(ILOp::Return, DataType::Void, {V.Node}));
      }
      return;
    }
    case BcOp::New: {
      anchorConflicts(-1, /*KillsMemory=*/true);
      NodeId N = IL->makeNode(ILOp::New, DataType::Object);
      IL->node(N).A = I.A;
      anchor(N);
      push(N);
      break;
    }
    case BcOp::NewArray: {
      StackEntry Len = pop();
      anchorConflicts(-1, /*KillsMemory=*/true);
      NodeId N = IL->makeNode(ILOp::NewArray, I.Type, {Len.Node});
      anchor(N);
      push(N);
      break;
    }
    case BcOp::NewMultiArray: {
      std::vector<NodeId> Lens((unsigned)I.A);
      for (unsigned K = (unsigned)I.A; K-- > 0;)
        Lens[K] = pop().Node;
      anchorConflicts(-1, /*KillsMemory=*/true);
      NodeId N =
          IL->makeNode(ILOp::NewMultiArray, DataType::Address, std::move(Lens));
      IL->node(N).A = I.A;
      anchor(N);
      push(N);
      break;
    }
    case BcOp::InstanceOf: {
      StackEntry Obj = pop();
      NodeId N = IL->makeNode(ILOp::InstanceOf, DataType::Int32, {Obj.Node});
      IL->node(N).A = I.A;
      push(N);
      break;
    }
    case BcOp::CheckCast: {
      StackEntry Obj = pop();
      NodeId Chk = IL->makeNode(ILOp::CastCheck, DataType::Void, {Obj.Node});
      IL->node(Chk).A = I.A;
      addTree(Chk);
      push(Obj.Node);
      break;
    }
    case BcOp::MonitorEnter: {
      StackEntry Obj = pop();
      anchorConflicts(-1, /*KillsMemory=*/true);
      addTree(IL->makeNode(ILOp::MonitorEnter, DataType::Void, {Obj.Node}));
      break;
    }
    case BcOp::MonitorExit: {
      StackEntry Obj = pop();
      anchorConflicts(-1, /*KillsMemory=*/true);
      addTree(IL->makeNode(ILOp::MonitorExit, DataType::Void, {Obj.Node}));
      break;
    }
    case BcOp::Throw: {
      StackEntry Obj = pop();
      addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {Obj.Node}));
      addTree(IL->makeNode(ILOp::Throw, DataType::Void, {Obj.Node}));
      return;
    }
    case BcOp::ArrayCopy: {
      StackEntry Len = pop();
      StackEntry DstPos = pop();
      StackEntry Dst = pop();
      StackEntry SrcPos = pop();
      StackEntry Src = pop();
      addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {Src.Node}));
      addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {Dst.Node}));
      anchorConflicts(-1, /*KillsMemory=*/true);
      addTree(IL->makeNode(
          ILOp::ArrayCopy, DataType::Void,
          {Src.Node, SrcPos.Node, Dst.Node, DstPos.Node, Len.Node}));
      break;
    }
    case BcOp::ArrayCmp: {
      StackEntry B = pop();
      StackEntry A = pop();
      addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {A.Node}));
      addTree(IL->makeNode(ILOp::NullCheck, DataType::Void, {B.Node}));
      push(IL->makeNode(ILOp::ArrayCmp, DataType::Int32, {A.Node, B.Node}));
      break;
    }
    case BcOp::Pop: {
      StackEntry V = pop();
      // Preserve side effects of the discarded value.
      if (hasSideEffects(IL->node(V.Node).Op))
        anchor(V.Node);
      break;
    }
    case BcOp::Dup: {
      StackEntry V = pop();
      push(V.Node);
      push(V.Node);
      break;
    }
    }
  }
  // The block fell off its end into the next leader.
  assert(EndPc < M.Code.size() && "verified code cannot fall off the end");
  fallthroughTo(EndPc);
}

std::unique_ptr<MethodIL> Generator::run() {
  findLeaders();
  computeEntryStacks();
  for (uint32_t Pc : Leaders)
    generateBlock(Pc);
  IL->computeReachability();
  return std::move(IL);
}

} // namespace

std::unique_ptr<MethodIL> jitml::generateIL(const Program &P,
                                            uint32_t MethodIndex) {
  return Generator(P, MethodIndex).run();
}
