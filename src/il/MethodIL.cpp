//===- il/MethodIL.cpp ----------------------------------------------------===//

#include "il/MethodIL.h"

#include "support/Memo.h"

#include <algorithm>

using namespace jitml;

const char *jitml::ilOpName(ILOp Op) {
  switch (Op) {
  case ILOp::Const:
    return "const";
  case ILOp::LoadLocal:
    return "loadlocal";
  case ILOp::LoadGlobal:
    return "loadglobal";
  case ILOp::LoadField:
    return "loadfield";
  case ILOp::LoadElem:
    return "loadelem";
  case ILOp::ArrayLen:
    return "arraylen";
  case ILOp::LoadException:
    return "loadexception";
  case ILOp::Add:
    return "add";
  case ILOp::Sub:
    return "sub";
  case ILOp::Mul:
    return "mul";
  case ILOp::Div:
    return "div";
  case ILOp::Rem:
    return "rem";
  case ILOp::Neg:
    return "neg";
  case ILOp::Shl:
    return "shl";
  case ILOp::Shr:
    return "shr";
  case ILOp::Or:
    return "or";
  case ILOp::And:
    return "and";
  case ILOp::Xor:
    return "xor";
  case ILOp::Cmp:
    return "cmp";
  case ILOp::CmpCond:
    return "cmpcond";
  case ILOp::Conv:
    return "conv";
  case ILOp::Call:
    return "call";
  case ILOp::New:
    return "new";
  case ILOp::NewArray:
    return "newarray";
  case ILOp::NewMultiArray:
    return "newmultiarray";
  case ILOp::InstanceOf:
    return "instanceof";
  case ILOp::ArrayCmp:
    return "arraycmp";
  case ILOp::StoreLocal:
    return "storelocal";
  case ILOp::StoreGlobal:
    return "storeglobal";
  case ILOp::StoreField:
    return "storefield";
  case ILOp::StoreElem:
    return "storeelem";
  case ILOp::NullCheck:
    return "nullcheck";
  case ILOp::BoundsCheck:
    return "boundscheck";
  case ILOp::DivCheck:
    return "divcheck";
  case ILOp::CastCheck:
    return "castcheck";
  case ILOp::MonitorEnter:
    return "monitorenter";
  case ILOp::MonitorExit:
    return "monitorexit";
  case ILOp::ArrayCopy:
    return "arraycopy";
  case ILOp::ExprStmt:
    return "exprstmt";
  case ILOp::Branch:
    return "branch";
  case ILOp::Goto:
    return "goto";
  case ILOp::Return:
    return "return";
  case ILOp::Throw:
    return "throw";
  }
  return "?";
}

MethodIL::MethodIL(const Program &P, uint32_t MethodIndex)
    : Prog(&P), MethodIndex(MethodIndex) {
  const MethodInfo &M = P.methodAt(MethodIndex);
  LocalTypes = M.LocalTypes;
}

NodeId *MethodIL::allocKids(size_t N) {
  constexpr size_t ChunkSize = 1024;
  if (KidChunkUsed + N > KidChunkCap) {
    size_t Cap = std::max(N, ChunkSize);
    KidChunks.push_back(std::make_unique<NodeId[]>(Cap));
    KidChunkUsed = 0;
    KidChunkCap = Cap;
  }
  NodeId *Out = KidChunks.back().get() + KidChunkUsed;
  KidChunkUsed += N;
  return Out;
}

void MethodIL::assignKids(Node &N, const NodeId *K, size_t Count) {
  N.Kids.Count = (uint32_t)Count;
  if (Count <= KidList::InlineSlots) {
    for (size_t I = 0; I < Count; ++I)
      N.Kids.Inline[I] = K[I];
    N.Kids.Ovf = nullptr;
  } else {
    // Always fresh pool storage: two nodes must never alias one overflow
    // list, or an element write through one would be seen by the other.
    NodeId *Slot = allocKids(Count);
    std::copy(K, K + Count, Slot);
    N.Kids.Ovf = Slot;
  }
}

NodeId MethodIL::makeNode(ILOp Op, DataType Type) {
  Node N;
  N.Op = Op;
  N.Type = Type;
  Nodes.push_back(std::move(N));
  ++ModEpoch;
  return (NodeId)Nodes.size() - 1;
}

NodeId MethodIL::makeNode(ILOp Op, DataType Type,
                          std::initializer_list<NodeId> Kids) {
  NodeId Id = makeNode(Op, Type);
  assignKids(Nodes[Id], Kids.begin(), Kids.size());
  return Id;
}

NodeId MethodIL::makeNode(ILOp Op, DataType Type,
                          const std::vector<NodeId> &Kids) {
  NodeId Id = makeNode(Op, Type);
  assignKids(Nodes[Id], Kids.data(), Kids.size());
  return Id;
}

void MethodIL::setKids(NodeId Id, const NodeId *K, size_t N) {
  assert(Id < Nodes.size() && "node id out of range");
  ++ModEpoch;
  assignKids(Nodes[Id], K, N);
}

NodeId MethodIL::makeConstI(DataType Type, int64_t V) {
  NodeId Id = makeNode(ILOp::Const, Type);
  Nodes[Id].ConstI = V;
  return Id;
}

NodeId MethodIL::makeConstF(DataType Type, double V) {
  NodeId Id = makeNode(ILOp::Const, Type);
  Nodes[Id].ConstF = V;
  return Id;
}

BlockId MethodIL::makeBlock() {
  Blocks.emplace_back();
  ++ModEpoch;
  return (BlockId)Blocks.size() - 1;
}

void MethodIL::addEdge(BlockId From, BlockId To) {
  block(From).Succs.push_back(To);
  block(To).Preds.push_back(From);
}

void MethodIL::replaceEdge(BlockId From, BlockId OldTo, BlockId NewTo) {
  bool Replaced = false;
  for (BlockId &S : block(From).Succs)
    if (S == OldTo && !Replaced) {
      S = NewTo;
      Replaced = true;
    }
  assert(Replaced && "edge to replace not found");
  auto &OldPreds = block(OldTo).Preds;
  auto It = std::find(OldPreds.begin(), OldPreds.end(), From);
  assert(It != OldPreds.end() && "stale pred list");
  OldPreds.erase(It);
  block(NewTo).Preds.push_back(From);
}

void MethodIL::recomputePreds() {
  ++ModEpoch;
  for (Block &B : Blocks)
    B.Preds.clear();
  for (BlockId Id = 0; Id < Blocks.size(); ++Id)
    for (BlockId S : Blocks[Id].Succs)
      Blocks[S].Preds.push_back(Id);
}

void MethodIL::computeReachability() {
  std::vector<uint8_t> New(Blocks.size(), 0);
  if (Entry != InvalidBlock) {
    std::vector<BlockId> Stack{Entry};
    New[Entry] = 1;
    while (!Stack.empty()) {
      BlockId Id = Stack.back();
      Stack.pop_back();
      auto Push = [&](BlockId S) {
        if (!New[S]) {
          New[S] = 1;
          Stack.push_back(S);
        }
      };
      for (BlockId S : Blocks[Id].Succs)
        Push(S);
      for (const HandlerRef &H : Blocks[Id].Handlers)
        Push(H.Handler);
    }
  }
  bool Changed = false;
  for (size_t I = 0; I < Blocks.size(); ++I) {
    bool R = New[I] != 0;
    if (Blocks[I].Reachable != R) {
      Blocks[I].Reachable = R;
      Changed = true;
    }
  }
  if (Changed)
    ++ModEpoch;
}

uint32_t MethodIL::countLiveNodes() const {
  if (LiveCountEpoch == ModEpoch && memoEnabled())
    return LiveCount;
  std::vector<bool> Seen(Nodes.size(), false);
  uint32_t Count = 0;
  std::vector<NodeId> Stack;
  for (const Block &B : Blocks) {
    if (!B.Reachable)
      continue;
    for (NodeId Root : B.Trees)
      Stack.push_back(Root);
  }
  while (!Stack.empty()) {
    NodeId Id = Stack.back();
    Stack.pop_back();
    if (Seen[Id])
      continue;
    Seen[Id] = true;
    ++Count;
    for (NodeId Kid : Nodes[Id].Kids)
      Stack.push_back(Kid);
  }
  LiveCountEpoch = ModEpoch;
  LiveCount = Count;
  return Count;
}

std::vector<BlockId> MethodIL::reversePostOrder() const {
  std::vector<BlockId> Post;
  if (Entry == InvalidBlock)
    return Post;
  std::vector<uint8_t> State(Blocks.size(), 0); // 0 new, 1 open, 2 done
  // Iterative DFS with an explicit stack of (block, next-successor-index).
  std::vector<std::pair<BlockId, size_t>> Stack;
  Stack.emplace_back(Entry, 0);
  State[Entry] = 1;
  auto Successors = [&](BlockId Id) {
    std::vector<BlockId> All = Blocks[Id].Succs;
    for (const HandlerRef &H : Blocks[Id].Handlers)
      All.push_back(H.Handler);
    return All;
  };
  while (!Stack.empty()) {
    auto &[Id, NextIdx] = Stack.back();
    std::vector<BlockId> Succ = Successors(Id);
    if (NextIdx < Succ.size()) {
      BlockId S = Succ[NextIdx++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[Id] = 2;
    Post.push_back(Id);
    Stack.pop_back();
  }
  std::reverse(Post.begin(), Post.end());
  return Post;
}
