//===- il/ILVerifier.h - IL structural invariants ---------------*- C++ -*-===//
///
/// \file
/// Structural checks run after IL generation and (in tests and debug runs)
/// after every optimization pass: every reachable block ends in exactly one
/// terminator, successor counts match the terminator kind, statement opcodes
/// appear only as treetops, child counts match opcodes, and node/local/CFG
/// references stay in range.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_IL_ILVERIFIER_H
#define JITML_IL_ILVERIFIER_H

#include "il/MethodIL.h"

#include <string>
#include <vector>

namespace jitml {

/// Returns a list of violated invariants; empty means the IL is sound.
std::vector<std::string> verifyIL(const MethodIL &IL);

} // namespace jitml

#endif // JITML_IL_ILVERIFIER_H
