//===- il/ILVerifier.h - IL structural invariants ---------------*- C++ -*-===//
///
/// \file
/// Structural checks run after IL generation and (in tests and debug runs)
/// after every optimization pass: every reachable block ends in exactly one
/// terminator, successor counts match the terminator kind, statement opcodes
/// appear only as treetops, child counts match opcodes, and node/local/CFG
/// references stay in range.
///
/// verifyILDeep layers the semantic invariants the code generator relies on
/// on top: an acyclic node DAG (operand def-before-use under the IL's
/// evaluate-at-first-reference semantics), no side-effecting expression
/// shared across blocks (it would execute once per referencing block), every
/// treetop a statement (the stack-balance analog: a bare expression root is
/// a value that is computed and never consumed), Succs/Preds mirror
/// consistency, sound Reachable flags, and category-level type agreement
/// between every node and its operands, locals, and the method signature.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_IL_ILVERIFIER_H
#define JITML_IL_ILVERIFIER_H

#include "il/MethodIL.h"

#include <string>
#include <vector>

namespace jitml {

/// Returns a list of violated invariants; empty means the IL is sound.
std::vector<std::string> verifyIL(const MethodIL &IL);

/// Structural checks plus the CFG/DAG/type invariants listed above. This is
/// the check interposed between optimization passes under JITML_VERIFY_IL
/// (see verify/PassVerifier.h); any pass output that trips it would lower
/// to wrong or crashing native code.
std::vector<std::string> verifyILDeep(const MethodIL &IL);

} // namespace jitml

#endif // JITML_IL_ILVERIFIER_H
